package ssa

import (
	"sort"

	"lowutil/internal/ir"
)

// Natural-loop forest from back-edges, with trip-count bounds inferred from
// SCCP constants. A back-edge is an edge u→h where h dominates u; all
// back-edges sharing a header form one loop whose body is the union of the
// backward-reachable blocks. Loops nest by block containment; each loop's
// trip count is inferred, where possible, from the canonical MJ loop shape
// (a header predicate over an induction phi with constant init, bound and
// step), and feeds the per-instruction static frequency weights.

// Loop is one natural loop.
type Loop struct {
	// Header is the loop-header block (the target of the back-edges).
	Header int
	// Blocks lists the member blocks, ascending (header included).
	Blocks []int
	// Parent indexes the innermost enclosing loop in Forest.Loops, or -1.
	Parent int
	// Depth is the nesting depth, 1 for an outermost loop.
	Depth int
	// Trip is the exact number of body executions when the induction
	// pattern matched with constant bounds, else -1 (unknown).
	Trip int64
}

// Forest is the natural-loop forest of one method.
type Forest struct {
	Loops []Loop
	// LoopOf[b] indexes the innermost loop containing block b, or -1.
	LoopOf []int
}

// Depth returns the loop-nesting depth of block b (0 outside any loop).
func (ft *Forest) Depth(b int) int {
	if ft.LoopOf[b] < 0 {
		return 0
	}
	return ft.Loops[ft.LoopOf[b]].Depth
}

// BuildForest finds the natural loops of f and, given the SCCP fixpoint,
// infers constant trip counts. sc may be nil (no trip inference then).
func BuildForest(f *Func, sc *SCCP) *Forest {
	cfg, dom := f.CFG, f.Dom
	nb := cfg.NumBlocks()
	ft := &Forest{LoopOf: make([]int, nb)}
	for i := range ft.LoopOf {
		ft.LoopOf[i] = -1
	}

	// Collect back-edge latches per header, headers in RPO so outer loops
	// come first for same-header merging.
	latches := make(map[int][]int)
	var headers []int
	for _, b := range cfg.RPO {
		for _, s := range cfg.Blocks[b].Succs {
			if cfg.Reachable(s) && dom.Dominates(s, b) {
				if len(latches[s]) == 0 {
					headers = append(headers, s)
				}
				latches[s] = append(latches[s], b)
			}
		}
	}
	sort.Ints(headers)

	inBody := make([]int, nb)
	for i := range inBody {
		inBody[i] = -1
	}
	for _, h := range headers {
		li := len(ft.Loops)
		body := []int{h}
		inBody[h] = li
		work := make([]int, 0, len(latches[h]))
		for _, l := range latches[h] {
			if inBody[l] != li {
				inBody[l] = li
				body = append(body, l)
				work = append(work, l)
			}
		}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, p := range cfg.Blocks[b].Preds {
				if cfg.Reachable(p) && inBody[p] != li && p != h {
					inBody[p] = li
					body = append(body, p)
					work = append(work, p)
				}
			}
		}
		sort.Ints(body)
		ft.Loops = append(ft.Loops, Loop{Header: h, Blocks: body, Parent: -1, Trip: -1})
	}

	// Nesting: loops sorted by header RPO give outer-before-inner for shared
	// blocks; assign each block to the smallest containing loop and derive
	// parents from header containment.
	contains := make([]map[int]bool, len(ft.Loops))
	for i := range ft.Loops {
		contains[i] = make(map[int]bool, len(ft.Loops[i].Blocks))
		for _, b := range ft.Loops[i].Blocks {
			contains[i][b] = true
		}
	}
	for i := range ft.Loops {
		// Parent: the smallest loop strictly containing this one. Loops with
		// the same header were merged, so distinct loops sharing blocks nest
		// (natural loops in a reducible CFG are disjoint or nested), and a
		// strict-size requirement rules out parent cycles even on irreducible
		// inputs.
		best, bestSize := -1, 1<<30
		for j := range ft.Loops {
			if i == j || !contains[j][ft.Loops[i].Header] {
				continue
			}
			if len(ft.Loops[j].Blocks) > len(ft.Loops[i].Blocks) && len(ft.Loops[j].Blocks) < bestSize {
				best, bestSize = j, len(ft.Loops[j].Blocks)
			}
		}
		ft.Loops[i].Parent = best
	}
	var depth func(i int) int
	depth = func(i int) int {
		if ft.Loops[i].Depth > 0 {
			return ft.Loops[i].Depth
		}
		d := 1
		if p := ft.Loops[i].Parent; p >= 0 {
			d = depth(p) + 1
		}
		ft.Loops[i].Depth = d
		return d
	}
	for i := range ft.Loops {
		depth(i)
	}
	for i := range ft.Loops {
		for _, b := range ft.Loops[i].Blocks {
			if ft.LoopOf[b] < 0 || ft.Loops[ft.LoopOf[b]].Depth < ft.Loops[i].Depth {
				ft.LoopOf[b] = i
			}
		}
	}

	if sc != nil {
		rep := CopyProp(f)
		for i := range ft.Loops {
			ft.Loops[i].Trip = inferTrip(f, sc, rep, &ft.Loops[i], inBodyFn(contains[i]))
		}
	}
	return ft
}

func inBodyFn(set map[int]bool) func(int) bool {
	return func(b int) bool { return set[b] }
}

// inferTrip matches the canonical counted-loop shape and returns the exact
// number of body executions, or 0 when the shape or the constants are
// absent. The MJ front end lowers `while (i < n) { ...; i = i + s; }` to a
// header block that evaluates the exit test `if i >= n goto end` (the
// negated continue condition, taken edge exiting), so the matcher looks for
// any in-loop conditional with exactly one exiting edge whose operands are
// a header induction phi and an SCCP constant.
func inferTrip(f *Func, sc *SCCP, rep []ValID, lp *Loop, inBody func(int) bool) int64 {
	cfg := f.CFG
	for _, b := range lp.Blocks {
		blk := &cfg.Blocks[b]
		last := blk.Last()
		in := &f.M.Code[last]
		if in.Op != ir.OpIf || len(blk.Succs) != 2 {
			continue
		}
		exitIdx := -1
		if !inBody(blk.Succs[0]) && inBody(blk.Succs[1]) {
			exitIdx = 0
		} else if inBody(blk.Succs[0]) && !inBody(blk.Succs[1]) {
			exitIdx = 1
		} else {
			continue
		}
		ops := f.Operands[last]
		if len(ops) != 2 {
			continue
		}
		// One side: induction phi at the header; other side: constant bound.
		for side := 0; side < 2; side++ {
			iv := rep[ops[side]]
			bound, boundConst := sc.ConstOf(ops[1-side])
			if !boundConst || bound.IsNull {
				continue
			}
			init, step, ok := matchInduction(f, sc, rep, lp, iv)
			if !ok {
				continue
			}
			cmp := in.Cmp
			if side == 1 {
				cmp = flipCmp(cmp)
			}
			// cmp now relates iv (left) to bound (right). The loop exits
			// when the *taken* edge leaves the body; if the fallthrough
			// exits, the exit condition is the negation.
			exitCmp := cmp
			if exitIdx == 1 {
				exitCmp = negateCmp(cmp)
			}
			if t, ok := tripCount(init.I, bound.I, step, exitCmp); ok {
				return t
			}
		}
	}
	return -1
}

// matchInduction recognizes iv as a header phi with a constant init argument
// from outside the loop and a self-increment `iv + step` (constant step)
// from inside it.
func matchInduction(f *Func, sc *SCCP, rep []ValID, lp *Loop, iv ValID) (init Const, step int64, ok bool) {
	v := &f.Vals[iv]
	if v.Kind != VPhi || v.Block != lp.Header {
		return Const{}, 0, false
	}
	preds := f.CFG.Blocks[lp.Header].Preds
	haveInit, haveStep := false, false
	inBody := make(map[int]bool, len(lp.Blocks))
	for _, b := range lp.Blocks {
		inBody[b] = true
	}
	for j, a := range v.Args {
		if a == None {
			continue
		}
		fromInside := j < len(preds) && inBody[preds[j]]
		if !fromInside {
			c, isC := sc.ConstOf(a)
			if !isC || c.IsNull {
				return Const{}, 0, false
			}
			if haveInit && c != init {
				return Const{}, 0, false
			}
			init, haveInit = c, true
			continue
		}
		// Inside edge: a = iv ± const, possibly through copies.
		r := rep[a]
		av := &f.Vals[r]
		if av.Kind != VInstr {
			return Const{}, 0, false
		}
		in := &f.M.Code[av.PC]
		if in.Op != ir.OpBin || (in.Bin != ir.Add && in.Bin != ir.Sub) {
			return Const{}, 0, false
		}
		x, y := rep[f.Operands[av.PC][0]], rep[f.Operands[av.PC][1]]
		var s int64
		switch {
		case x == iv:
			c, isC := sc.ConstOf(y)
			if !isC || c.IsNull {
				return Const{}, 0, false
			}
			s = c.I
			if in.Bin == ir.Sub {
				s = -s
			}
		case y == iv && in.Bin == ir.Add:
			c, isC := sc.ConstOf(x)
			if !isC || c.IsNull {
				return Const{}, 0, false
			}
			s = c.I
		default:
			return Const{}, 0, false
		}
		if haveStep && s != step {
			return Const{}, 0, false
		}
		step, haveStep = s, true
	}
	return init, step, haveInit && haveStep && step != 0
}

// tripCount solves the number of header evaluations that pass before the
// exit condition `i exitCmp bound` first holds, for i starting at init and
// advancing by step — i.e. the number of body executions.
func tripCount(init, bound, step int64, exitCmp ir.Cmp) (int64, bool) {
	ceilDiv := func(a, b int64) int64 {
		q := a / b
		if a%b != 0 {
			q++
		}
		return q
	}
	switch exitCmp {
	case ir.Ge: // exit when i >= bound; continue while i < bound
		if step <= 0 {
			return 0, false
		}
		if init >= bound {
			return 0, true
		}
		return ceilDiv(bound-init, step), true
	case ir.Gt: // exit when i > bound; continue while i <= bound
		if step <= 0 {
			return 0, false
		}
		if init > bound {
			return 0, true
		}
		return ceilDiv(bound-init+1, step), true
	case ir.Le: // exit when i <= bound; continue while i > bound
		if step >= 0 {
			return 0, false
		}
		if init <= bound {
			return 0, true
		}
		return ceilDiv(init-bound, -step), true
	case ir.Lt: // exit when i < bound; continue while i >= bound
		if step >= 0 {
			return 0, false
		}
		if init < bound {
			return 0, true
		}
		return ceilDiv(init-bound+1, -step), true
	case ir.Eq: // exit when i == bound
		if step == 0 {
			return 0, false
		}
		d := bound - init
		if d%step != 0 || d/step < 0 {
			return 0, false // never hits the bound: not a counted loop
		}
		return d / step, true
	case ir.Ne: // exit when i != bound: exits immediately unless init==bound
		return 0, false
	}
	return 0, false
}

func flipCmp(c ir.Cmp) ir.Cmp {
	switch c {
	case ir.Lt:
		return ir.Gt
	case ir.Le:
		return ir.Ge
	case ir.Gt:
		return ir.Lt
	case ir.Ge:
		return ir.Le
	}
	return c // Eq, Ne symmetric
}

func negateCmp(c ir.Cmp) ir.Cmp {
	switch c {
	case ir.Eq:
		return ir.Ne
	case ir.Ne:
		return ir.Eq
	case ir.Lt:
		return ir.Ge
	case ir.Le:
		return ir.Gt
	case ir.Gt:
		return ir.Le
	case ir.Ge:
		return ir.Lt
	}
	return c
}
