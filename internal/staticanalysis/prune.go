package staticanalysis

import (
	"lowutil/internal/interproc"
	"lowutil/internal/ir"
)

// PruneStats summarizes what PruneSet proved.
type PruneStats struct {
	// Candidates is the number of instructions of prunable opcodes examined.
	Candidates int
	// Pruned is the number proven irrelevant to heap value flow.
	Pruned int
}

// pruneOps are the opcodes PruneSet may remove from tracing: pure, local,
// effect-free value producers. Loads, stores and allocations stay — they are
// the paper's cost/benefit events themselves — and calls, natives and
// predicates carry stack or consumer semantics the profiler must see.
var pruneOps = map[ir.Op]bool{
	ir.OpConst:      true,
	ir.OpMove:       true,
	ir.OpBin:        true,
	ir.OpNeg:        true,
	ir.OpNot:        true,
	ir.OpInstanceOf: true,
}

// PruneSet returns, indexed by ir.Instr.ID, the instructions whose Gcost
// events the tracer may skip without changing any thin-sliced cost-benefit
// result. The proof obligation has two halves, both discharged from the
// def-use chains (locals are frame-private, so the chains are complete):
//
//  1. The instruction's node must feed nothing the analyses walk forward
//     from a store or backward from a load: every use of its value is a
//     base-pointer operand — which thin slicing deliberately ignores, per
//     the paper base pointers explain *how* a value moved, not *what*
//     moved — or a use by another pruned instruction (dead expression
//     trees prune as a unit, computed as a greatest fixpoint).
//
//  2. The instruction's node must not sit inside any location's forward
//     benefit slice (HRAB counts every transitive reader of a loaded
//     value). That holds exactly when no operand value derives from a heap
//     read, a call result, or a parameter — a "load taint" fixpoint over
//     the reaching definitions. Constants and fresh allocations are
//     taint-free.
//
// The guarantee targets thin slicing: traditional slicing consumes base
// pointers, so callers must not apply the set when that mode is on. Pruning
// gates event emission only — the interpreter still executes the
// instruction, so program behavior, outputs and step counts are identical;
// only the trace gets cheaper.
func PruneSet(prog *ir.Program) ([]bool, PruneStats) {
	return PruneSetWith(prog, nil)
}

// PruneSetWith is PruneSet with interprocedural taint summaries. When sum is
// non-nil, the two conservative worst-case assumptions of the intraprocedural
// analysis are replaced by whole-program facts for every method the call
// graph covers: a formal parameter is tainted only when some reachable call
// site may pass it a heap-derived value, and a call result is tainted only
// when some resolved target's return value is. Both refinements shrink the
// taint set monotonically, so the prune set is always a superset of
// PruneSet's — methods outside the call graph keep the conservative rules.
func PruneSetWith(prog *ir.Program, sum *interproc.Summaries) ([]bool, PruneStats) {
	prune := make([]bool, len(prog.Instrs))
	var st PruneStats
	for _, c := range prog.Classes {
		for _, m := range c.Methods {
			if sum != nil && !sum.Covers(m) {
				pruneMethod(m, prune, &st, nil)
			} else {
				pruneMethod(m, prune, &st, sum)
			}
		}
	}
	return prune, st
}

func pruneMethod(m *ir.Method, prune []bool, st *PruneStats, sum *interproc.Summaries) {
	cfg := ir.NewCFG(m)
	rd := NewReachingDefs(m, cfg)
	du := rd.DefUse()
	n := len(m.Code)

	// inputs[pc] lists the definitions feeding pc's value operands (base
	// operands excluded — thin slicing never consumes them).
	inputs := make([][]int, n)
	for d, uses := range du {
		for _, u := range uses {
			if u.Base {
				continue
			}
			if m.Code[u.PC].Def() >= 0 {
				inputs[u.PC] = append(inputs[u.PC], d)
			}
		}
	}

	// Load taint: true when the definition's value may derive from a heap
	// read, a call/native result, an array length, or a parameter — anything
	// whose dependence chain can reach back to a load node, putting every
	// transitive reader inside that location's forward benefit slice.
	tainted := make([]bool, n+m.Params)
	for s := 0; s < m.Params; s++ {
		if sum != nil {
			tainted[n+s] = sum.ParamTainted(m, s)
		} else {
			tainted[n+s] = true
		}
	}
	for pc := range m.Code {
		in := &m.Code[pc]
		if in.Def() < 0 {
			continue
		}
		switch in.Op {
		case ir.OpLoadField, ir.OpLoadStatic, ir.OpALoad, ir.OpArrayLen:
			tainted[pc] = true
		case ir.OpCall:
			// ArrayLen depends on the allocation node, which an
			// allocation-size value chain can make load-reachable; call
			// results chain into callee internals — unless the summaries
			// prove every resolved target returns a taint-free value.
			// Native results are left untainted: native nodes are consumer
			// sinks, and every forward benefit walk stops at consumers
			// without traversing them.
			if sum != nil {
				tainted[pc] = sum.CallResultTainted(in)
			} else {
				tainted[pc] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for pc := range m.Code {
			if tainted[pc] || m.Code[pc].Def() < 0 {
				continue
			}
			for _, d := range inputs[pc] {
				if tainted[d] {
					tainted[pc] = true
					changed = true
					break
				}
			}
		}
	}

	// Greatest fixpoint: start from every untainted pure candidate, then
	// strike any whose value reaches a non-pruned consumer.
	cand := make([]bool, n)
	for pc := range m.Code {
		in := &m.Code[pc]
		if pruneOps[in.Op] && in.Def() >= 0 && cfg.Reachable(cfg.BlockOf[pc]) {
			st.Candidates++
			cand[pc] = !tainted[pc]
		}
	}
	for changed := true; changed; {
		changed = false
		for pc := range m.Code {
			if !cand[pc] {
				continue
			}
			for _, u := range du[pc] {
				if u.Base {
					continue
				}
				if m.Code[u.PC].Def() < 0 || !cand[u.PC] {
					cand[pc] = false
					changed = true
					break
				}
			}
		}
	}
	for pc := range m.Code {
		if cand[pc] {
			prune[m.Code[pc].ID] = true
			st.Pruned++
		}
	}
}
