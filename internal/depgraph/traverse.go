package depgraph

// This file implements the traversals behind the paper's cost metrics:
//
//   - abstract cost (Definition 4): frequency-weighted backward reachability
//   - HRAC (Definition 5): backward reachability that terminates, without
//     counting, at nodes that read a static or object field — restricting
//     the cost to one heap-to-heap "hop"
//   - HRAB (Definition 6): the forward dual, terminating at heap writers
//
// All traversals are iterative; graphs can be deep.

// BackwardSlice returns the set of nodes that can reach seed through dep
// edges, including seed itself — the dynamic thin slice of seed.
func BackwardSlice(seed *Node) map[*Node]struct{} {
	visited := map[*Node]struct{}{seed: {}}
	stack := []*Node{seed}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n.g.depSets[n.id].each(n.g.all, func(d *Node) {
			if _, ok := visited[d]; !ok {
				visited[d] = struct{}{}
				stack = append(stack, d)
			}
		})
	}
	return visited
}

// ForwardSlice returns the set of nodes reachable from seed through use
// edges, including seed itself.
func ForwardSlice(seed *Node) map[*Node]struct{} {
	visited := map[*Node]struct{}{seed: {}}
	stack := []*Node{seed}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n.g.useSets[n.id].each(n.g.all, func(u *Node) {
			if _, ok := visited[u]; !ok {
				visited[u] = struct{}{}
				stack = append(stack, u)
			}
		})
	}
	return visited
}

// AbstractCost computes Definition 4: the sum of frequencies of all nodes
// that can reach n (plus n itself).
func AbstractCost(n *Node) int64 {
	var sum int64
	for m := range BackwardSlice(n) {
		sum += m.Freq()
	}
	return sum
}

// HRAC computes the heap-relative abstract cost of n (Definition 5): the
// frequency sum over backward paths from n that contain no heap-reading
// node. Heap readers terminate the walk and are not counted; n itself is
// always counted.
func HRAC(n *Node) int64 {
	sum := n.Freq()
	visited := map[*Node]struct{}{n: {}}
	stack := []*Node{n}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		cur.g.depSets[cur.id].each(cur.g.all, func(d *Node) {
			if _, ok := visited[d]; ok {
				return
			}
			visited[d] = struct{}{}
			if d.ReadsHeap() {
				return // hop boundary: uncounted, untraversed
			}
			sum += d.Freq()
			stack = append(stack, d)
		})
	}
	return sum
}

// HRAB computes the heap-relative abstract benefit of n (Definition 6): the
// frequency sum over forward paths from n that contain no heap-writing node
// (heap writers terminate the walk uncounted; n itself is counted). The
// second result reports whether the walk reached a consumer (predicate or
// native) node, in which case the paper assigns the location a large RAB.
func HRAB(n *Node) (sum int64, consumed bool) {
	sum = n.Freq()
	visited := map[*Node]struct{}{n: {}}
	stack := []*Node{n}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		cur.g.useSets[cur.id].each(cur.g.all, func(u *Node) {
			if _, ok := visited[u]; ok {
				return
			}
			visited[u] = struct{}{}
			if u.IsConsumer() {
				consumed = true
				sum += u.Freq()
				return // consumers are sinks
			}
			if u.WritesHeap() {
				return // hop boundary: uncounted, untraversed
			}
			sum += u.Freq()
			stack = append(stack, u)
		})
	}
	return sum, consumed
}

// SliceFreq sums the frequencies of a node set (used to compare thin vs.
// traditional slice weights).
func SliceFreq(set map[*Node]struct{}) int64 {
	var sum int64
	for n := range set {
		sum += n.Freq()
	}
	return sum
}
