package ir

import "fmt"

// Validate checks structural well-formedness of p's method bodies. Seal runs
// it automatically; transformation passes that rewrite bodies in place (SSA
// destruction) call it again, after Reindex, to prove the rewritten program
// is still well formed.
func Validate(p *Program) error { return p.validate() }

// Reindex rebuilds the program-wide instruction metadata after method bodies
// have been rewritten in place: Instrs, AllocSites, and every instruction's
// ID, PC, Method back-pointer and AllocSite index are recomputed with the
// same numbering scheme Seal uses. Class, method and field IDs are untouched
// (passes may not add or remove declarations, only rewrite bodies).
func (p *Program) Reindex() {
	p.Instrs = p.Instrs[:0]
	p.AllocSites = p.AllocSites[:0]
	for _, c := range p.Classes {
		for _, m := range c.Methods {
			for i := range m.Code {
				in := &m.Code[i]
				in.ID = len(p.Instrs)
				in.Method = m
				in.PC = i
				if in.IsAlloc() {
					in.AllocSite = len(p.AllocSites)
					p.AllocSites = append(p.AllocSites, in)
				} else {
					in.AllocSite = -1
				}
				p.Instrs = append(p.Instrs, in)
			}
		}
	}
}

// validate checks structural well-formedness of every method body: branch
// targets in range, operand slots in range, bodies terminated, calls
// argument-count-consistent. It does not type-check locals (the MJ front end
// does that before lowering; hand-built programs get dynamic checks from the
// interpreter).
func (p *Program) validate() error {
	for _, c := range p.Classes {
		for _, m := range c.Methods {
			if err := validateMethod(m); err != nil {
				return err
			}
		}
	}
	return nil
}

func validateMethod(m *Method) error {
	n := len(m.Code)
	if n == 0 {
		return fmt.Errorf("ir: %s: empty body", m.QualifiedName())
	}
	// The frame must hold every parameter: callers copy argument i into slot
	// i unconditionally, and the dataflow passes hand parameters pseudo-defs
	// numbered from NumLocals — both index out of range when a hand-built
	// method understates its frame size.
	if m.NumLocals < m.Params {
		return fmt.Errorf("ir: %s: %d locals cannot hold %d parameters",
			m.QualifiedName(), m.NumLocals, m.Params)
	}
	errf := func(pc int, format string, args ...any) error {
		return fmt.Errorf("ir: %s pc %d (%s): %s", m.QualifiedName(), pc, m.Code[pc].String(), fmt.Sprintf(format, args...))
	}
	checkSlot := func(pc, s int, what string) error {
		if s < 0 || s >= m.NumLocals {
			return errf(pc, "%s slot %d out of range [0,%d)", what, s, m.NumLocals)
		}
		return nil
	}
	for pc := range m.Code {
		in := &m.Code[pc]
		switch in.Op {
		case OpIf, OpGoto:
			if in.Target < 0 || in.Target >= n {
				return errf(pc, "branch target %d out of range [0,%d)", in.Target, n)
			}
		}
		if in.Dst >= 0 {
			if err := checkSlot(pc, in.Dst, "dst"); err != nil {
				return err
			}
		}
		// Operand presence per opcode.
		switch in.Op {
		case OpMove, OpNeg, OpNot, OpArrayLen, OpNewArray:
			if err := checkSlot(pc, in.A, "a"); err != nil {
				return err
			}
		case OpBin, OpALoad, OpIf:
			if err := checkSlot(pc, in.A, "a"); err != nil {
				return err
			}
			if err := checkSlot(pc, in.B, "b"); err != nil {
				return err
			}
		case OpLoadField:
			if err := checkSlot(pc, in.A, "base"); err != nil {
				return err
			}
			if in.Field == nil {
				return errf(pc, "nil field")
			}
		case OpStoreField:
			if err := checkSlot(pc, in.A, "base"); err != nil {
				return err
			}
			if err := checkSlot(pc, in.B, "src"); err != nil {
				return err
			}
			if in.Field == nil {
				return errf(pc, "nil field")
			}
		case OpLoadStatic:
			if in.Static == nil {
				return errf(pc, "nil static")
			}
		case OpStoreStatic:
			if in.Static == nil {
				return errf(pc, "nil static")
			}
			if err := checkSlot(pc, in.A, "src"); err != nil {
				return err
			}
		case OpAStore:
			for _, s := range [][2]any{{in.A, "arr"}, {in.B, "idx"}, {in.C2, "src"}} {
				if err := checkSlot(pc, s[0].(int), s[1].(string)); err != nil {
					return err
				}
			}
		case OpNew, OpInstanceOf:
			if in.Class == nil {
				return errf(pc, "nil class")
			}
		case OpCall:
			if in.Callee == nil {
				return errf(pc, "nil callee")
			}
			if len(in.Args) != in.Callee.Params {
				return errf(pc, "call passes %d args, callee %s takes %d",
					len(in.Args), in.Callee.QualifiedName(), in.Callee.Params)
			}
			if in.Dst >= 0 && in.Callee.Returns == nil {
				return errf(pc, "call stores result of void method %s", in.Callee.QualifiedName())
			}
			for _, a := range in.Args {
				if err := checkSlot(pc, a, "arg"); err != nil {
					return err
				}
			}
		case OpNative:
			for _, a := range in.Args {
				if err := checkSlot(pc, a, "arg"); err != nil {
					return err
				}
			}
		case OpReturn:
			if in.HasA {
				if m.Returns == nil {
					return errf(pc, "value return from void method")
				}
				if err := checkSlot(pc, in.A, "ret"); err != nil {
					return err
				}
			} else if m.Returns != nil {
				return errf(pc, "void return from value-returning method")
			}
		}
	}
	// Control-flow checks run over the method's CFG: no reachable block may
	// fall off the end of the body, and no reachable read may be of a slot
	// that no path initializes.
	cfg := NewCFG(m)
	for _, b := range cfg.RPO {
		if cfg.Blocks[b].FallsOff {
			return fmt.Errorf("ir: %s: control falls off the end of the body", m.QualifiedName())
		}
	}
	if err := checkInitialized(m, cfg); err != nil {
		return err
	}
	return nil
}

// checkInitialized rejects reads of slots that no control-flow path
// initializes: a forward may-initialized dataflow (union over predecessors,
// parameters initialized at entry) over the CFG's reachable blocks. A read
// outside the may-set means every path to it — including branches that jump
// over would-be initializations — bypasses the slot's definition. The
// interpreter would silently produce a zero value there; such bodies are
// builder bugs, so they are rejected at seal time.
func checkInitialized(m *Method, cfg *CFG) error {
	nb := cfg.NumBlocks()
	if nb == 0 {
		return nil
	}
	words := (m.NumLocals + 63) / 64
	in := make([][]uint64, nb)
	out := make([][]uint64, nb)
	for i := 0; i < nb; i++ {
		in[i] = make([]uint64, words)
		out[i] = make([]uint64, words)
	}
	has := func(set []uint64, s int) bool { return set[s/64]&(1<<(s%64)) != 0 }
	add := func(set []uint64, s int) { set[s/64] |= 1 << (s % 64) }

	changed := true
	for changed {
		changed = false
		for _, b := range cfg.RPO {
			blk := &cfg.Blocks[b]
			cur := in[b]
			for w := range cur {
				cur[w] = 0
			}
			// Union over predecessors; unreachable preds have empty out-sets
			// and contribute nothing. The entry additionally starts with its
			// parameters initialized.
			for _, p := range blk.Preds {
				for w := range cur {
					cur[w] |= out[p][w]
				}
			}
			if b == 0 {
				for s := 0; s < m.Params && s < m.NumLocals; s++ {
					add(cur, s)
				}
			}
			tmp := make([]uint64, words)
			copy(tmp, cur)
			for pc := blk.Start; pc < blk.End; pc++ {
				if d := m.Code[pc].Def(); d >= 0 {
					add(tmp, d)
				}
			}
			same := true
			for w := range tmp {
				if out[b][w] != tmp[w] {
					same = false
				}
			}
			if !same {
				copy(out[b], tmp)
				changed = true
			}
		}
	}

	for _, b := range cfg.RPO {
		blk := &cfg.Blocks[b]
		cur := make([]uint64, words)
		copy(cur, in[b])
		for pc := blk.Start; pc < blk.End; pc++ {
			inst := &m.Code[pc]
			var uerr error
			inst.Uses(func(s int, _ bool) {
				if uerr == nil && !has(cur, s) {
					uerr = fmt.Errorf("ir: %s pc %d (%s): read of slot %d, which no path initializes",
						m.QualifiedName(), pc, inst.String(), s)
				}
			})
			if uerr != nil {
				return uerr
			}
			if d := inst.Def(); d >= 0 {
				add(cur, d)
			}
		}
	}
	return nil
}
