// Differential proof that the hot-path engine — handler-table dispatch with
// inline caches over the dense interned Gcost — is observationally identical
// to the reference engine (switch dispatch, map-backed graph): byte-identical
// profile reports, serialized profiles, multi-hop slices, and client-analysis
// stats on every workload, plus a race check that two concurrent profiles
// share no state and a fuzz harness for inline-cache invalidation under
// receiver-class rebinding.
package lowutil

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"lowutil/internal/interp"
	"lowutil/internal/workloads"
)

// diffWorkloads is the sweep list: all 18 workloads, trimmed to a spread of
// dispatch-heavy ones under -short so the -race pass stays fast.
func diffWorkloads(t testing.TB) []*workloads.Workload {
	all := workloads.All()
	if !testing.Short() {
		return all
	}
	var subset []*workloads.Workload
	for _, w := range all {
		switch w.Name {
		case "chart", "bloat", "eclipse", "tradebeans":
			subset = append(subset, w)
		}
	}
	if len(subset) == 0 {
		t.Fatal("short subset selected no workloads")
	}
	return subset
}

func compileWorkload(t testing.TB, w *workloads.Workload, scale int) *Program {
	t.Helper()
	prog, err := Compile(w.Source(scale))
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	return prog
}

// profileOutputs captures every engine-sensitive output the CLI can print
// for a profile run: the ranked report, the serialized profile bytes, the
// multi-hop slice report, and the client-analysis stats.
func profileOutputs(t *testing.T, prog *Program, legacy bool) (report, saved, multihop, stats string) {
	t.Helper()
	var opts []ProfileOption
	if legacy {
		opts = append(opts, WithLegacyEngine())
	}
	profile, err := prog.ProfileContext(context.Background(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := profile.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var mh strings.Builder
	for i, f := range profile.TopStructuresMultiHop(10, 2) {
		fmt.Fprintf(&mh, "%3d. %s\n", i+1, f)
	}
	gs := profile.GraphStats()
	ds := profile.Deadness()
	return profile.Report(DefaultTop), buf.String(), mh.String(),
		fmt.Sprintf("%+v %+v steps=%d", gs, ds, profile.Steps())
}

// TestEngineDifferentialAllWorkloads proves the dense-graph handler-table
// engine and the legacy engine produce byte-identical outputs on every
// workload. Report, saved profile, multi-hop slice, and stats must each
// match exactly — any divergence in dispatch order, inline-cache fills, or
// graph iteration order would surface here.
func TestEngineDifferentialAllWorkloads(t *testing.T) {
	for _, w := range diffWorkloads(t) {
		t.Run(w.Name, func(t *testing.T) {
			prog := compileWorkload(t, w, 1)
			report, saved, multihop, stats := profileOutputs(t, prog, false)
			lreport, lsaved, lmultihop, lstats := profileOutputs(t, prog, true)
			if report != lreport {
				t.Errorf("report differs:\n--- dense ---\n%s\n--- legacy ---\n%s", report, lreport)
			}
			if saved != lsaved {
				t.Errorf("serialized profile differs (%d vs %d bytes)", len(saved), len(lsaved))
			}
			if multihop != lmultihop {
				t.Errorf("multi-hop slice differs:\n--- dense ---\n%s\n--- legacy ---\n%s", multihop, lmultihop)
			}
			if stats != lstats {
				t.Errorf("stats differ: dense %q vs legacy %q", stats, lstats)
			}
		})
	}
}

// TestInterpreterDifferentialAllWorkloads pins the uninstrumented engines
// against each other: handler-table dispatch must execute every workload to
// the same output, step count, and allocation count as the legacy switch.
func TestInterpreterDifferentialAllWorkloads(t *testing.T) {
	for _, w := range diffWorkloads(t) {
		t.Run(w.Name, func(t *testing.T) {
			src, err := w.Compile(1)
			if err != nil {
				t.Fatal(err)
			}
			m1 := interp.New(src)
			if err := m1.Run(); err != nil {
				t.Fatal(err)
			}
			m2 := interp.New(src)
			m2.LegacyDispatch = true
			if err := m2.Run(); err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(m1.Output) != fmt.Sprint(m2.Output) {
				t.Errorf("output differs: %v vs %v", m1.Output, m2.Output)
			}
			if m1.Steps != m2.Steps || m1.Allocs != m2.Allocs || m1.NativeWork != m2.NativeWork {
				t.Errorf("counters differ: steps %d/%d allocs %d/%d native %d/%d",
					m1.Steps, m2.Steps, m1.Allocs, m2.Allocs, m1.NativeWork, m2.NativeWork)
			}
		})
	}
}

// TestConcurrentProfilesShareNoState runs two profiles of the same compiled
// program concurrently and requires both to match a sequential reference
// byte for byte. Under -race (make check) this proves the hot path keeps
// all mutable state — dense tables, inline caches, shadow slabs — inside
// the profiler/machine pair rather than on the shared program.
func TestConcurrentProfilesShareNoState(t *testing.T) {
	w := workloads.ByName("eclipse")
	prog := compileWorkload(t, w, 1)
	ref, _, _, _ := profileOutputs(t, prog, false)

	results := make([]string, 2)
	errs := make([]error, 2)
	done := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			defer func() { done <- i }()
			profile, err := prog.ProfileContext(context.Background())
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = profile.Report(DefaultTop)
		}(i)
	}
	<-done
	<-done
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("concurrent profile %d: %v", i, errs[i])
		}
		if results[i] != ref {
			t.Errorf("concurrent profile %d diverged from sequential reference", i)
		}
	}
}

// icFuzzSource builds a program whose single hot call site rebinds its
// receiver class on every iteration according to seq: the inline cache at
// the x.tag() site is filled, invalidated, and refilled in whatever order
// the fuzzer chooses. The driver also rebinds through an array so the
// array-element load path feeds the same cache.
func icFuzzSource(seq []byte) string {
	var picks strings.Builder
	for i, b := range seq {
		var cls string
		switch b % 3 {
		case 0:
			cls = "A"
		case 1:
			cls = "B"
		default:
			cls = "C"
		}
		fmt.Fprintf(&picks, "    xs[%d] = new %s();\n", i, cls)
	}
	return fmt.Sprintf(`
class A { int tag() { return 1; } }
class B extends A { int tag() { return 22; } }
class C extends B { int tag() { return 333; } }
class Main {
  static void main() {
    A[] xs = new A[%d];
%s    int total = 0;
    for (int r = 0; r < 3; r = r + 1) {
      for (int i = 0; i < xs.length; i = i + 1) {
        total = total + xs[i].tag();
      }
    }
    print(total);
  }
}`, len(seq), picks.String())
}

// FuzzInlineCacheInvalidation drives the inline-cache invalidation protocol
// with arbitrary receiver-class rebinding sequences. The oracle is the
// legacy switch interpreter: for every sequence, both engines must print
// the same output and take the same number of steps, profiled or not.
func FuzzInlineCacheInvalidation(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{0, 1, 2})
	f.Add([]byte{2, 2, 2, 1, 0, 1, 2, 0})
	f.Add(bytes.Repeat([]byte{0, 1}, 16))
	f.Add(bytes.Repeat([]byte{2, 1, 0}, 10))
	f.Fuzz(func(t *testing.T, seq []byte) {
		if len(seq) == 0 || len(seq) > 64 {
			t.Skip()
		}
		prog, err := Compile(icFuzzSource(seq))
		if err != nil {
			t.Fatalf("generated program failed to compile: %v", err)
		}
		run := func(legacy bool) (string, int64) {
			m := interp.New(prog.prog)
			m.LegacyDispatch = legacy
			if err := m.Run(); err != nil {
				t.Fatal(err)
			}
			return fmt.Sprint(m.Output), m.Steps
		}
		out, steps := run(false)
		lout, lsteps := run(true)
		if out != lout || steps != lsteps {
			t.Fatalf("engines diverge on seq %v: %q/%d vs %q/%d", seq, out, steps, lout, lsteps)
		}
		report, _, _, _ := profileOutputs(t, prog, false)
		lreport, _, _, _ := profileOutputs(t, prog, true)
		if report != lreport {
			t.Fatalf("profiled reports diverge on seq %v:\n--- dense ---\n%s\n--- legacy ---\n%s",
				seq, report, lreport)
		}
	})
}
