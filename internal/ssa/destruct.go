package ssa

import (
	"fmt"

	"lowutil/internal/ir"
)

// SSA destruction: rewrite the method body back to flat IR with one fresh
// local slot per SSA value and explicit copies on the incoming edges of every
// phi. The rewrite drops CFG-unreachable blocks (renaming never visited them,
// so they have no SSA form; no reachable branch can target them) and keeps
// the reachable blocks in their original order, which preserves every
// fallthrough adjacency: a fallthrough successor starts exactly where its
// predecessor ends, so no dropped block can sit between the two.
//
// Phi copies for one edge form a parallel copy — all sources are read before
// any destination is written — and are sequentialized with at most one
// scratch slot (cycles are broken one at a time, and a broken cycle fully
// drains before the next can be stuck, so the scratch is free again).
//
// A phi argument can be an undef value (the slot was uninitialized along that
// edge). No copy is emitted for it: the phi's fresh slot is then itself
// uninitialized on that path, and the interpreter materializes the same zero
// value the original body would have read. (A program could in principle
// observe the difference between a *stale* slot and a zero through an
// undef-edge re-entry, but the validator's may-init check plus MJ's
// structured lowering keep reads on dynamically-taken undef paths
// unreachable, and the round-trip tests run the full workload suite to back
// that up.)

// Destruct rewrites f.M's body out of SSA: f.M.Code, NumLocals and
// LocalNames are replaced. The caller owns re-running Program.Reindex and
// ir.Validate (Destruct operates on one method; the program-wide instruction
// index is rebuilt once after all methods are rewritten). The Func must not
// be used afterwards — its PCs no longer match the body.
func Destruct(f *Func) {
	m, cfg := f.M, f.CFG

	// Slot assignment: parameters keep their slots; every other value gets a
	// fresh slot. Undef values get none (never written, never read — see the
	// package comment — so no slot is needed; defensively, a fresh slot is
	// assigned lazily if one ever surfaces at a real operand).
	slotOf := make([]int, len(f.Vals))
	names := make([]string, 0, len(f.Vals))
	for s := 0; s < m.Params; s++ {
		names = append(names, m.LocalName(s))
	}
	next := m.Params
	for v := range f.Vals {
		switch f.Vals[v].Kind {
		case VParam:
			slotOf[v] = f.Vals[v].Slot
		case VUndef:
			slotOf[v] = -1
		default:
			slotOf[v] = next
			names = append(names, f.Name(ValID(v)))
			next++
		}
	}
	scratch := -1
	getScratch := func() int {
		if scratch < 0 {
			scratch = next
			names = append(names, "ssa.scratch")
			next++
		}
		return scratch
	}
	operandSlot := func(v ValID) int {
		if slotOf[v] < 0 {
			slotOf[v] = next
			names = append(names, f.Name(v))
			next++
		}
		return slotOf[v]
	}

	edgeArg := edgeArgIndex(cfg)
	// copiesFor collects the parallel copy for the k-th successor edge of b.
	copiesFor := func(b, k int) [][2]int {
		var cp [][2]int
		s := cfg.Blocks[b].Succs[k]
		for _, pv := range f.Phis[s] {
			a := f.Vals[pv].Args[edgeArg[b][k]]
			if a == None || f.Vals[a].Kind == VUndef {
				continue
			}
			if dst, src := slotOf[pv], operandSlot(a); dst != src {
				cp = append(cp, [2]int{dst, src})
			}
		}
		return cp
	}

	var code []ir.Instr
	emitCopies := func(cp [][2]int, line int) {
		for _, c := range sequentialize(cp, getScratch) {
			code = append(code, ir.Instr{Op: ir.OpMove, Dst: c[0], A: c[1], B: -1, C2: -1, Line: line})
		}
	}

	// splitEdge records a pending split block for a branch-taken edge that
	// needs copies: the copies plus a Goto to the original successor.
	type splitEdge struct {
		copies  [][2]int
		toBlock int
		line    int
	}
	var splits []splitEdge
	// patches[i] redirects code[i].Target to a block start (toSplit < 0) or a
	// split block, resolved once the layout is final.
	type patch struct {
		idx     int
		toBlock int
		toSplit int
	}
	var patches []patch

	newStart := make([]int, cfg.NumBlocks())
	for b := range newStart {
		newStart[b] = -1
	}
	for b := 0; b < cfg.NumBlocks(); b++ {
		if !cfg.Reachable(b) {
			continue
		}
		blk := &cfg.Blocks[b]
		if b == 0 {
			// The virtual function-entry edge of entry phis: copy the
			// parameter values in. Sources are parameter slots, destinations
			// fresh, so the parallel copy is trivially acyclic. These copies
			// run once at function entry and sit *before* newStart[0]: a
			// branch back to the entry block (it is a loop header then) must
			// not re-execute them, or the phi would be clobbered with the
			// original parameter value on every iteration.
			var cp [][2]int
			for _, pv := range f.Phis[0] {
				args := f.Vals[pv].Args
				a := args[len(args)-1]
				if a == None || f.Vals[a].Kind == VUndef {
					continue
				}
				cp = append(cp, [2]int{slotOf[pv], operandSlot(a)})
			}
			emitCopies(cp, m.Code[blk.Start].Line)
		}
		newStart[b] = len(code)
		for pc := blk.Start; pc < blk.End; pc++ {
			in := m.Code[pc] // copy
			ops := make([]int, 0, len(f.Operands[pc]))
			for _, v := range f.Operands[pc] {
				ops = append(ops, operandSlot(v))
			}
			setUses(&in, ops)
			if d := f.DefOf[pc]; d != None {
				in.Dst = slotOf[d]
			}
			last := pc == blk.Last()
			switch {
			case last && in.Op == ir.OpGoto:
				emitCopies(copiesFor(b, 0), in.Line)
				patches = append(patches, patch{idx: len(code), toBlock: blk.Succs[0], toSplit: -1})
				code = append(code, in)
			case last && in.Op == ir.OpIf:
				// Taken edge: copies can't sit in this block (the fallthrough
				// path must not see them), so they go to a split block.
				if cp := copiesFor(b, 0); len(cp) > 0 {
					patches = append(patches, patch{idx: len(code), toSplit: len(splits)})
					splits = append(splits, splitEdge{copies: cp, toBlock: blk.Succs[0], line: in.Line})
				} else {
					patches = append(patches, patch{idx: len(code), toBlock: blk.Succs[0], toSplit: -1})
				}
				code = append(code, in)
				// Fallthrough edge: the taken path has jumped away, so its
				// copies sit inline after the predicate.
				if len(blk.Succs) > 1 {
					emitCopies(copiesFor(b, 1), in.Line)
				}
			default:
				code = append(code, in)
				if last && in.Op != ir.OpReturn && len(blk.Succs) == 1 {
					// Plain fallthrough into the next block.
					emitCopies(copiesFor(b, 0), in.Line)
				}
			}
		}
	}
	// Split blocks go after the body. The last reachable block necessarily
	// ends in a Return or Goto — a validated body has no falls-off block, and
	// a trailing fallthrough or If would make its physical successor
	// reachable — so control cannot run into the splits.
	splitStart := make([]int, len(splits))
	for i, sp := range splits {
		splitStart[i] = len(code)
		emitCopies(sp.copies, sp.line)
		patches = append(patches, patch{idx: len(code), toBlock: sp.toBlock, toSplit: -1})
		code = append(code, ir.Instr{Op: ir.OpGoto, Dst: -1, A: -1, B: -1, C2: -1, Line: sp.line})
	}
	for _, p := range patches {
		if p.toSplit >= 0 {
			code[p.idx].Target = splitStart[p.toSplit]
		} else {
			if newStart[p.toBlock] < 0 {
				panic(fmt.Sprintf("ssa: %s: branch into unreachable block %d", m.QualifiedName(), p.toBlock))
			}
			code[p.idx].Target = newStart[p.toBlock]
		}
	}

	m.Code = code
	m.NumLocals = next
	m.LocalNames = names
}

// DestructProgram rewrites every method of prog out of SSA (building SSA
// per method first), reindexes and validates. It is the whole-program
// round-trip used by the tests and the `lowutil ssa -roundtrip` command.
func DestructProgram(prog *ir.Program) error {
	for _, c := range prog.Classes {
		for _, m := range c.Methods {
			Destruct(Build(m, nil))
		}
	}
	prog.Reindex()
	return ir.Validate(prog)
}

// sequentialize orders a parallel copy (distinct destinations) so that no
// source is clobbered before it is read, breaking cycles with a scratch slot
// obtained from tmp. Self-copies are dropped.
func sequentialize(copies [][2]int, tmp func() int) [][2]int {
	pending := append([][2]int(nil), copies...)
	var out [][2]int
	for len(pending) > 0 {
		progress := false
		for i := 0; i < len(pending); i++ {
			dst := pending[i][0]
			busy := false
			for j := range pending {
				if j != i && pending[j][1] == dst {
					busy = true
					break
				}
			}
			if busy {
				continue
			}
			if pending[i][1] != dst {
				out = append(out, pending[i])
			}
			pending = append(pending[:i], pending[i+1:]...)
			i--
			progress = true
		}
		if !progress {
			// Every pending destination is also a pending source: the rest is
			// a union of disjoint cycles. Divert one source to the scratch
			// slot; the cycle it belongs to is then drainable.
			t := tmp()
			src := pending[0][1]
			out = append(out, [2]int{t, src})
			for j := range pending {
				if pending[j][1] == src {
					pending[j][1] = t
				}
			}
		}
	}
	return out
}

// setUses writes the operand slots back into in, in the exact order
// Instr.Uses reports them.
func setUses(in *ir.Instr, ops []int) {
	i := 0
	next := func() int {
		s := ops[i]
		i++
		return s
	}
	switch in.Op {
	case ir.OpMove, ir.OpNeg, ir.OpNot, ir.OpNewArray, ir.OpInstanceOf:
		in.A = next()
	case ir.OpBin, ir.OpIf, ir.OpALoad:
		in.A = next()
		in.B = next()
	case ir.OpLoadField, ir.OpArrayLen:
		in.A = next()
	case ir.OpStoreField:
		in.A = next()
		in.B = next()
	case ir.OpStoreStatic:
		in.A = next()
	case ir.OpAStore:
		in.A = next()
		in.B = next()
		in.C2 = next()
	case ir.OpCall, ir.OpNative:
		args := make([]int, len(in.Args))
		for k := range args {
			args[k] = next()
		}
		in.Args = args
	case ir.OpReturn:
		if in.HasA {
			in.A = next()
		}
	}
	if i != len(ops) {
		panic(fmt.Sprintf("ssa: operand count mismatch rewriting %s: used %d of %d", in.Op, i, len(ops)))
	}
}
