package interproc

import (
	"testing"

	"lowutil/internal/interp"
	"lowutil/internal/ir"
	"lowutil/internal/workloads"
)

// The frequency-weighted bounds must be a sound refinement of the unweighted
// PR 3 bounds: weight-0 pruning only ever removes proven-dead instructions
// from the slices, so per location the weighted CostBound/BenefitBound can
// never exceed the unweighted ones, and a location statically consumed under
// weighting was consumed before. Across the workload suite at least one bound
// must strictly shrink — otherwise the weighting machinery is vacuous.
func TestWeightedBoundsNeverLooser(t *testing.T) {
	shortSet := map[string]bool{"chart": true, "avrora": true, "hsqldb": true, "luindex": true}
	strict := 0
	for _, w := range workloads.All() {
		if testing.Short() && !shortSet[w.Name] {
			continue
		}
		prog, err := w.Compile(1)
		if err != nil {
			t.Fatal(err)
		}
		an := Analyze(prog, Config{Mode: RTA})
		plain := an.Slice.Bounds()
		weighted := an.Bounds()
		if len(plain) != len(weighted) {
			t.Fatalf("%s: weighting changed the location set: %d vs %d", w.Name, len(plain), len(weighted))
		}
		byKey := make(map[Loc]*LocBound, len(plain))
		for i := range plain {
			byKey[plain[i].Key] = &plain[i]
		}
		for i := range weighted {
			wb := &weighted[i]
			pb := byKey[wb.Key]
			if pb == nil {
				t.Fatalf("%s: location %v only exists under weighting", w.Name, wb.Key)
			}
			if wb.CostBound > pb.CostBound || wb.BenefitBound > pb.BenefitBound {
				t.Errorf("%s: %s: weighted bounds looser: cost %d>%d or benefit %d>%d",
					w.Name, an.LocName(wb.Key), wb.CostBound, pb.CostBound, wb.BenefitBound, pb.BenefitBound)
			}
			if wb.Consumed && !pb.Consumed {
				t.Errorf("%s: %s: weighting fabricated a consumer witness", w.Name, an.LocName(wb.Key))
			}
			if wb.Stores != pb.Stores || wb.Loads != pb.Loads {
				t.Errorf("%s: %s: weighting changed raw store/load counts", w.Name, an.LocName(wb.Key))
			}
			if wb.CostBound < pb.CostBound || wb.BenefitBound < pb.BenefitBound {
				strict++
			}
		}
	}
	// The -short subset happens to contain no prunable dead code, so the
	// non-vacuity claim is only checked on the full suite.
	if strict == 0 && !testing.Short() {
		t.Error("no bound strictly tightened on any workload; weight-0 pruning is vacuous")
	}
}

// execRecorder marks every instruction the interpreter touches.
type execRecorder struct {
	interp.NopTracer
	hit []bool
}

func (r *execRecorder) Exec(ev *interp.Event) { r.hit[ev.In.ID] = true }
func (r *execRecorder) BeforeCall(in *ir.Instr, _ *interp.Frame, _ *ir.Method, _ *interp.Object) {
	r.hit[in.ID] = true
}
func (r *execRecorder) BeforeReturn(in *ir.Instr, _ *interp.Frame) { r.hit[in.ID] = true }

// TestFreqCoversExecution is the soundness side of weight-0 pruning: every
// instruction a real run executes must carry a positive static frequency
// estimate, or the pruned slices could miss dynamic nodes.
func TestFreqCoversExecution(t *testing.T) {
	shortSet := map[string]bool{"chart": true, "avrora": true, "hsqldb": true, "luindex": true}
	for _, w := range workloads.All() {
		if testing.Short() && !shortSet[w.Name] {
			continue
		}
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog, err := w.Compile(1)
			if err != nil {
				t.Fatal(err)
			}
			an := Analyze(prog, Config{Mode: RTA})
			rec := &execRecorder{hit: make([]bool, len(prog.Instrs))}
			m := interp.New(prog)
			m.Tracer = rec
			if err := m.Run(); err != nil {
				t.Fatal(err)
			}
			for id, hit := range rec.hit {
				if hit && an.Freq[id] <= 0 {
					in := prog.Instrs[id]
					t.Errorf("executed instruction i%d (%s.%s:%d %s) has frequency %g",
						id, in.Method.Class.Name, in.Method.Name, in.PC, in, an.Freq[id])
				}
			}
		})
	}
}
