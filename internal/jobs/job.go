package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"time"

	"lowutil"
)

// State is a job's lifecycle position. Transitions:
//
//	queued → running → done | failed
//	running → retrying → queued   (transient failure, backoff pending)
//	running → queued              (drain re-queue, attempt not consumed)
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateRetrying State = "retrying"
	StateDone     State = "done"
	StateFailed   State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// Event is one entry of a job's progress log. Events carry a per-job
// sequence number, dense from 1, and no wall-clock fields, so the stream
// for a given job replays byte-identically and in deterministic order no
// matter when or how often it is read.
type Event struct {
	Seq     int    `json:"seq"`
	Type    string `json:"type"`
	Attempt int    `json:"attempt,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// Event types.
const (
	EventQueued   = "queued"
	EventStarted  = "started"
	EventRetrying = "retrying"
	EventRequeued = "requeued"
	EventDone     = "done"
	EventFailed   = "failed"
)

// Result is a completed job's payload: the same JSON body the synchronous
// endpoint for the spec's kind would have returned.
type Result struct {
	Kind    string          `json:"kind"`
	Payload json.RawMessage `json:"payload"`
}

// JobError is the terminal error of a failed job, in the same typed shape
// as the /v2/* error envelope.
type JobError struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
}

func (e *JobError) Error() string { return e.Message }

// Status is a point-in-time snapshot of one job.
type Status struct {
	ID       string    `json:"id"`
	Batch    string    `json:"batch"`
	Index    int       `json:"index"`
	Kind     string    `json:"kind"`
	State    State     `json:"state"`
	Attempts int       `json:"attempts"`
	Priority int       `json:"priority,omitempty"`
	Events   int       `json:"events"`
	Result   *Result   `json:"result,omitempty"`
	Err      *JobError `json:"error,omitempty"`
}

// job is the queue's internal record for one submitted spec.
type job struct {
	id       string
	batch    string
	index    int
	spec     Spec
	hash     string
	priority int
	seq      int64     // global submission order, ties within a priority
	deadline time.Time // zero = none
	shard    int

	mu      sync.Mutex
	state   State
	attempt int
	events  []Event
	changed chan struct{} // closed and replaced on every event append
	result  *Result
	err     *JobError
}

func newJob(id, batch string, index int, req Request, seq int64, shard int, now time.Time) *job {
	j := &job{
		id:       id,
		batch:    batch,
		index:    index,
		spec:     req.Spec,
		hash:     req.Spec.Hash(),
		priority: req.Priority,
		seq:      seq,
		shard:    shard,
		state:    StateQueued,
		changed:  make(chan struct{}),
	}
	if req.Deadline > 0 {
		j.deadline = now.Add(req.Deadline)
	}
	j.append(Event{Type: EventQueued})
	return j
}

// append records ev with the next sequence number and wakes every stream.
// Callers hold j.mu except during construction.
func (j *job) append(ev Event) {
	ev.Seq = len(j.events) + 1
	j.events = append(j.events, ev)
	close(j.changed)
	j.changed = make(chan struct{})
}

// transition applies a state change plus its event under the job lock.
func (j *job) transition(state State, ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	j.append(ev)
}

// finish completes the job with a result or a terminal error.
func (j *job) finish(res *Result, jerr *JobError, detail string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.result, j.err = res, jerr
	if jerr == nil {
		j.state = StateDone
		j.append(Event{Type: EventDone, Attempt: j.attempt, Detail: detail})
	} else {
		j.state = StateFailed
		j.append(Event{Type: EventFailed, Attempt: j.attempt, Detail: jerr.Code + ": " + jerr.Message})
	}
}

// status snapshots the job.
func (j *job) status() *Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return &Status{
		ID:       j.id,
		Batch:    j.batch,
		Index:    j.index,
		Kind:     j.spec.Kind,
		State:    j.state,
		Attempts: j.attempt,
		Priority: j.priority,
		Events:   len(j.events),
		Result:   j.result,
		Err:      j.err,
	}
}

// ---- error classification ----

// transientErr marks an error as retryable regardless of its type.
type transientErr struct{ err error }

func (e *transientErr) Error() string { return e.err.Error() }
func (e *transientErr) Unwrap() error { return e.err }

// Transient wraps err so IsTransient reports true: executors use it to
// mark recoverable conditions (an evicted cache entry, a lost race) that a
// retry with backoff is expected to clear.
func Transient(err error) error { return &transientErr{err} }

// IsTransient reports whether err was marked Transient or is a canceled
// run (lowutil.ErrCanceled) — the two shapes the queue retries. A job
// whose own deadline has expired is never retried even if the error is
// transient.
func IsTransient(err error) bool {
	var te *transientErr
	return errors.As(err, &te) || errors.Is(err, lowutil.ErrCanceled)
}

// errorCode maps an execution error onto the typed envelope code shared
// with the server's /v2/* error responses.
func errorCode(err error) string {
	var ce *lowutil.CompileError
	var pe *lowutil.ProfileError
	switch {
	case errors.As(err, &ce):
		return "compile_error"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, lowutil.ErrCanceled), errors.Is(err, context.Canceled):
		return "canceled"
	case errors.As(err, &pe):
		return "profile_error"
	default:
		return "internal"
	}
}
