package clients

import (
	"strings"
	"testing"

	"lowutil/internal/interp"
	"lowutil/internal/ir"
	"lowutil/internal/profiler"
	"lowutil/internal/workloads"
)

// TestCopyProfilerOnXalan: the copy-heavy transformation pipeline must show
// heavy cross-representation chains.
func TestCopyProfilerOnXalan(t *testing.T) {
	w := workloads.ByName("xalan")
	prog, err := w.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	cp := NewCopyProfiler(prog)
	m := interp.New(prog)
	m.Tracer = cp
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	chains := cp.Chains()
	if len(chains) < 4 {
		t.Fatalf("xalan should have several copy chains, got %d", len(chains))
	}
	// The hottest chains each fire hundreds of times (70 nodes × 10 docs).
	if chains[0].Count < 300 {
		t.Errorf("hottest chain count = %d, want >= 300\n%s", chains[0].Count, FormatChains(chains, 5))
	}
	// Copies per executed instruction are high — the point of the workload.
	if float64(cp.TotalCopies) < 0.2*float64(m.Steps) {
		t.Errorf("copy fraction too low: %d copies / %d steps", cp.TotalCopies, m.Steps)
	}
}

// TestRewriteTrackerOnDerby: the FileContainer info array must dominate the
// silent-overwrite report.
func TestRewriteTrackerOnDerby(t *testing.T) {
	w := workloads.ByName("derby")
	prog, err := w.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	rw := NewRewriteTracker(prog)
	m := interp.New(prog)
	m.Tracer = rw
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	reps := rw.Report(20)
	if len(reps) == 0 {
		t.Fatal("no rewrite reports on derby")
	}
	// The info array is rebuilt on every write: even counting writePage's
	// own reads of slots 0/1, most writes are silently overwritten.
	top := reps[0]
	if top.OverwriteRatio() < 0.6 {
		t.Errorf("top silent-overwrite ratio = %.2f, want >= 0.6 (the info array)\n%v",
			top.OverwriteRatio(), top)
	}
	if top.Overwrites < 300 {
		t.Errorf("top overwrites = %d, want >= 300", top.Overwrites)
	}
}

// TestPredicateTrackerOnBloat: the debugging guard in the bloat workload is
// a constant predicate executed hundreds of times.
func TestPredicateTrackerOnBloat(t *testing.T) {
	w := workloads.ByName("bloat")
	prog, err := w.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	pt := NewPredicateTracker(prog)
	m := interp.New(prog)
	m.Tracer = pt
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	consts := pt.Constants(10)
	if len(consts) == 0 {
		t.Fatal("no constant predicates on bloat")
	}
	// The debug guard in Main.main lowers to a skip branch that is taken on
	// every iteration — a constant predicate either way.
	found := false
	for _, c := range consts {
		if strings.Contains(c.In.Method.QualifiedName(), "Main.main") && c.Count >= 10 {
			found = true
		}
	}
	if !found {
		t.Errorf("debug guard not flagged: %+v", consts)
	}
}

// TestNullTrackerSurvivesWorkloads: running the null tracker over clean
// workloads must not perturb execution and must build bounded graphs.
func TestNullTrackerSurvivesWorkloads(t *testing.T) {
	for _, name := range []string{"chart", "fop", "luindex"} {
		w := workloads.ByName(name)
		prog, err := w.Compile(1)
		if err != nil {
			t.Fatal(err)
		}
		nt := NewNullTracker(prog)
		m := interp.New(prog)
		m.Tracer = nt
		if err := m.Run(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if nt.G.NumNodes() > 2*prog.NumInstrs() {
			t.Errorf("%s: null graph exceeds 2|I| bound: %d nodes for %d instrs",
				name, nt.G.NumNodes(), prog.NumInstrs())
		}
		if _, diagnosed := nt.Diagnose(nil); diagnosed {
			t.Errorf("%s: diagnosed a non-error", name)
		}
	}
}

// TestMethodCostOnAntlr: the parser workload's expression evaluators should
// rank above trivial accessors.
func TestMethodCostOnAntlr(t *testing.T) {
	w := workloads.ByName("antlr")
	prog, err := w.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	mct := NewMethodCostTracker(newProfilerFor(prog))
	m := interp.New(prog)
	m.Tracer = mct
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	costs := mct.MethodCosts()
	if len(costs) < 3 {
		t.Fatalf("too few method costs: %d", len(costs))
	}
	rank := map[string]int{}
	for i, c := range costs {
		rank[c.Method.Name] = i
	}
	if r, ok := rank["parseExpr"]; !ok {
		t.Error("parseExpr missing")
	} else if peek, ok2 := rank["peek"]; ok2 && r > peek {
		t.Errorf("parseExpr (rank %d) should out-cost peek (rank %d)", r, peek)
	}
}

func newProfilerFor(prog *ir.Program) *profiler.Profiler {
	return profiler.New(prog, profiler.Options{Slots: 16})
}
