// Package profiler builds the cost-benefit dependence graph Gcost online,
// implementing the instrumentation semantics of Figure 4 of the paper as an
// interp.Tracer.
//
// For every storage location l the profiler maintains a shadow location l'
// holding the dependence-graph node that last wrote l: locals get shadow
// slots parallel to the frame's locals, heap locations get per-object shadow
// slices hung off interp.Object.Shadow (the "shadow heap"), and statics get
// a parallel static shadow table. A tracking stack passes dependences and
// the receiver-object context chain across calls, exactly as in the paper.
//
// The profiler is thin by default: loads and stores do not consume the base
// pointer. Setting Options.Traditional includes base-pointer dependences,
// giving the conventional dynamic-slicing baseline used in the ablation
// benchmarks.
package profiler

import (
	"lowutil/internal/contextenc"
	"lowutil/internal/depgraph"
	"lowutil/internal/interp"
	"lowutil/internal/ir"
)

// Options configures a Profiler.
type Options struct {
	// Slots is the paper's parameter s — the number of context slots per
	// instruction. Zero means 16.
	Slots int
	// Traditional includes base-pointer dependences at loads/stores,
	// turning thin slicing into traditional dynamic slicing.
	Traditional bool
	// TrackCR enables exact context-conflict-ratio bookkeeping (costs
	// memory proportional to distinct (instruction, context) pairs).
	TrackCR bool
	// Unabstracted disables context abstraction entirely: every instruction
	// *instance* becomes its own node, as in conventional dynamic slicing.
	// The node count is then bounded only by UnabstractedCap. Used by the
	// abstract-vs-concrete ablation.
	Unabstracted bool
	// UnabstractedCap caps per-instruction instance nodes in Unabstracted
	// mode (0 means 1<<20); beyond the cap, instances fold into the last
	// node so the experiment can finish instead of exhausting memory.
	UnabstractedCap int
	// TrackControl adds, to every value-producing node, a dependence on the
	// most recently executed predicate in the same frame — the §3.2
	// "considering vs ignoring control decision making" alternative (with
	// the closest dynamic predicate as the control scope). Costs then
	// include the effort of making the enclosing control decision.
	TrackControl bool
	// Prune, when non-nil and indexed by ir.Instr.ID, drops marked events on
	// arrival (see staticanalysis.PruneSet). Redundant when the Machine
	// already carries the set — this guard serves tracer stacks the machine
	// gate cannot reach. Must be nil when Traditional is set: the proof that
	// pruned instructions are invisible holds only under thin slicing.
	Prune []bool
}

// frameShadow is the per-frame tracker state: shadow locals plus the encoded
// receiver-object context chain of the frame.
type frameShadow struct {
	nodes []*depgraph.Node
	ctx   contextenc.Encoded
	slot  int // h(ctx), precomputed
	// lastPred is the most recently executed predicate node in this frame
	// (TrackControl mode only).
	lastPred *depgraph.Node
}

// objShadow is the per-object tracker state: the object tag (environment P —
// the context-annotated allocation node) and shadow slots for fields or
// array elements.
type objShadow struct {
	tag   *depgraph.Node
	slots []*depgraph.Node
}

// Profiler is an interp.Tracer that constructs Gcost.
type Profiler struct {
	G    *depgraph.Graph
	Prog *ir.Program

	slots    contextenc.Slots
	cr       *contextenc.ConflictTracker
	thin     bool
	unabs    bool
	unabsCap int
	control  bool
	prune    []bool

	// statics is the shadow of static-field storage.
	statics []*depgraph.Node

	// pendingCall carries argument shadows and callee context between
	// BeforeCall and EnterMethod (the tracking stack push).
	pendingArgs []*depgraph.Node
	pendingCtx  contextenc.Encoded
	havePending bool
	// pendingRet carries the return value's node between BeforeReturn and
	// AfterCall (the tracking stack pop).
	pendingRet *depgraph.Node

	// enabled gates graph construction for phase-restricted tracking;
	// context bookkeeping continues while disabled.
	enabled bool

	// fsPool recycles frameShadow records: a frame's shadow dies with the
	// frame at BeforeReturn (the machine never revisits a popped frame), so
	// EnterMethod can reuse it instead of allocating per call. Frames
	// abandoned on error simply aren't recycled.
	fsPool []*frameShadow

	// instCount counts instances per instruction in Unabstracted mode.
	instCount []int
}

// New returns a Profiler over prog.
func New(prog *ir.Program, opts Options) *Profiler {
	s := opts.Slots
	if s == 0 {
		s = 16
	}
	p := &Profiler{
		G:       depgraph.New(prog),
		Prog:    prog,
		slots:   contextenc.NewSlots(s),
		thin:    !opts.Traditional,
		unabs:   opts.Unabstracted,
		control: opts.TrackControl,
		statics: make([]*depgraph.Node, len(prog.Statics)),
		enabled: true,
	}
	if !opts.Traditional {
		p.prune = opts.Prune
	}
	if opts.TrackCR {
		p.cr = NewCRTracker(prog, s)
	}
	if p.unabs {
		p.instCount = make([]int, prog.NumInstrs())
		p.unabsCap = opts.UnabstractedCap
		if p.unabsCap == 0 {
			p.unabsCap = 1 << 20
		}
	}
	return p
}

// NewCRTracker returns the conflict tracker used when Options.TrackCR is
// set; exposed for tests.
func NewCRTracker(prog *ir.Program, s int) *contextenc.ConflictTracker {
	return contextenc.NewConflictTracker(contextenc.NewSlots(s), prog.NumInstrs())
}

// SetEnabled toggles graph construction; used for phase-restricted tracking
// ("track only the steady-state portion of a server's run").
func (p *Profiler) SetEnabled(on bool) { p.enabled = on }

// Enabled reports whether graph construction is active.
func (p *Profiler) Enabled() bool { return p.enabled }

// CR returns the conflict tracker (nil unless TrackCR was set).
func (p *Profiler) CR() *contextenc.ConflictTracker { return p.cr }

// Slots returns the configured s.
func (p *Profiler) Slots() int { return p.slots.S }

// ShadowNodes exposes the frame's shadow locals: for each local slot, the
// node that last wrote it. Wrapping clients (e.g. the method-cost tracker)
// use it to observe tracking data without re-implementing Figure 4.
func (p *Profiler) ShadowNodes(fr *interp.Frame) []*depgraph.Node {
	return p.fshadow(fr).nodes
}

// fshadow returns (creating if needed) the frame's shadow state.
func (p *Profiler) fshadow(fr *interp.Frame) *frameShadow {
	if fs, ok := fr.Shadow.(*frameShadow); ok {
		return fs
	}
	fs := &frameShadow{nodes: make([]*depgraph.Node, len(fr.Locals))}
	fs.slot = p.slots.Slot(fs.ctx)
	fr.Shadow = fs
	return fs
}

// oshadow returns (creating if needed) the object's shadow state.
func (p *Profiler) oshadow(o *interp.Object) *objShadow {
	if os, ok := o.Shadow.(*objShadow); ok {
		return os
	}
	var n int
	if o.IsArray() {
		n = len(o.Elems)
	} else {
		n = len(o.Fields)
	}
	os := &objShadow{slots: make([]*depgraph.Node, n)}
	o.Shadow = os
	return os
}

// node maps an instruction instance executing in frame shadow fs to its
// abstract node and bumps its frequency (the Touch of Definition 2's
// abstraction function f_a).
func (p *Profiler) node(in *ir.Instr, fs *frameShadow) *depgraph.Node {
	var n *depgraph.Node
	if p.unabs {
		c := p.instCount[in.ID]
		if c < p.unabsCap {
			p.instCount[in.ID] = c + 1
		}
		n = p.G.Touch(in, c)
	} else {
		if p.cr != nil {
			p.cr.Observe(in.ID, fs.ctx)
		}
		n = p.G.Touch(in, fs.slot)
	}
	if p.control && fs.lastPred != nil {
		p.G.AddDep(n, fs.lastPred)
	}
	return n
}

// consumerNode maps a predicate or native instruction to its context-free
// node.
func (p *Profiler) consumerNode(in *ir.Instr) *depgraph.Node {
	return p.G.Touch(in, depgraph.NoContext)
}

// Exec implements interp.Tracer.
func (p *Profiler) Exec(ev *interp.Event) {
	if !p.enabled {
		return
	}
	in := ev.In
	if p.prune != nil && in.ID < len(p.prune) && p.prune[in.ID] {
		return
	}
	fs := p.fshadow(ev.Frame)
	g := p.G

	switch in.Op {
	case ir.OpConst:
		fs.nodes[in.Dst] = p.node(in, fs)

	case ir.OpMove:
		n := p.node(in, fs)
		g.AddDep(n, fs.nodes[in.A])
		fs.nodes[in.Dst] = n

	case ir.OpBin:
		n := p.node(in, fs)
		g.AddDep(n, fs.nodes[in.A])
		g.AddDep(n, fs.nodes[in.B])
		fs.nodes[in.Dst] = n

	case ir.OpNeg, ir.OpNot, ir.OpInstanceOf:
		n := p.node(in, fs)
		g.AddDep(n, fs.nodes[in.A])
		fs.nodes[in.Dst] = n

	case ir.OpNew:
		n := p.node(in, fs)
		n.Eff = depgraph.EffAlloc
		n.EffLoc = depgraph.Loc{Alloc: n}
		fs.nodes[in.Dst] = n
		os := p.oshadow(ev.New)
		os.tag = n

	case ir.OpNewArray:
		n := p.node(in, fs)
		n.Eff = depgraph.EffAlloc
		n.EffLoc = depgraph.Loc{Alloc: n}
		g.AddDep(n, fs.nodes[in.A]) // the length value is consumed
		fs.nodes[in.Dst] = n
		os := p.oshadow(ev.New)
		os.tag = n

	case ir.OpLoadField:
		n := p.node(in, fs)
		os := p.oshadow(ev.Base)
		if in.Field.Slot < len(os.slots) {
			g.AddDep(n, os.slots[in.Field.Slot])
		}
		if !p.thin {
			g.AddDep(n, fs.nodes[in.A]) // base-pointer use (traditional)
		}
		loc := depgraph.Loc{Alloc: os.tag, Field: in.Field.ID}
		n.Eff = depgraph.EffLoad
		n.EffLoc = loc
		g.AddLocLoad(loc, n)
		fs.nodes[in.Dst] = n

	case ir.OpStoreField:
		n := p.node(in, fs)
		g.AddDep(n, fs.nodes[in.B])
		if !p.thin {
			g.AddDep(n, fs.nodes[in.A])
		}
		os := p.oshadow(ev.Base)
		if in.Field.Slot < len(os.slots) {
			os.slots[in.Field.Slot] = n
		}
		loc := depgraph.Loc{Alloc: os.tag, Field: in.Field.ID}
		n.Eff = depgraph.EffStore
		n.EffLoc = loc
		g.AddLocStore(loc, n)
		g.AddRef(n, os.tag)
		if ev.Val.K == ir.KindRef && ev.Val.Ref != nil {
			g.AddChild(loc, p.oshadow(ev.Val.Ref).tag)
		}

	case ir.OpLoadStatic:
		n := p.node(in, fs)
		g.AddDep(n, p.statics[in.Static.Slot])
		loc := depgraph.Loc{Alloc: nil, Field: in.Static.Slot}
		n.Eff = depgraph.EffLoad
		n.EffLoc = loc
		g.AddLocLoad(loc, n)
		fs.nodes[in.Dst] = n

	case ir.OpStoreStatic:
		n := p.node(in, fs)
		g.AddDep(n, fs.nodes[in.A])
		p.statics[in.Static.Slot] = n
		loc := depgraph.Loc{Alloc: nil, Field: in.Static.Slot}
		n.Eff = depgraph.EffStore
		n.EffLoc = loc
		g.AddLocStore(loc, n)
		if ev.Val.K == ir.KindRef && ev.Val.Ref != nil {
			g.AddChild(loc, p.oshadow(ev.Val.Ref).tag)
		}

	case ir.OpALoad:
		n := p.node(in, fs)
		os := p.oshadow(ev.Base)
		if int(ev.Index) < len(os.slots) {
			g.AddDep(n, os.slots[ev.Index])
		}
		g.AddDep(n, fs.nodes[in.B]) // the index is still considered used
		if !p.thin {
			g.AddDep(n, fs.nodes[in.A])
		}
		loc := depgraph.Loc{Alloc: os.tag, Field: depgraph.ElemField}
		n.Eff = depgraph.EffLoad
		n.EffLoc = loc
		g.AddLocLoad(loc, n)
		fs.nodes[in.Dst] = n

	case ir.OpAStore:
		n := p.node(in, fs)
		g.AddDep(n, fs.nodes[in.C2])
		g.AddDep(n, fs.nodes[in.B])
		if !p.thin {
			g.AddDep(n, fs.nodes[in.A])
		}
		os := p.oshadow(ev.Base)
		if int(ev.Index) < len(os.slots) {
			os.slots[ev.Index] = n
		}
		loc := depgraph.Loc{Alloc: os.tag, Field: depgraph.ElemField}
		n.Eff = depgraph.EffStore
		n.EffLoc = loc
		g.AddLocStore(loc, n)
		g.AddRef(n, os.tag)
		if ev.Val.K == ir.KindRef && ev.Val.Ref != nil {
			g.AddChild(loc, p.oshadow(ev.Val.Ref).tag)
		}

	case ir.OpArrayLen:
		// The length is metadata fixed at allocation; model the read as a
		// heap load whose last writer is the allocation node.
		n := p.node(in, fs)
		os := p.oshadow(ev.Base)
		g.AddDep(n, os.tag)
		loc := depgraph.Loc{Alloc: os.tag, Field: depgraph.ElemField}
		n.Eff = depgraph.EffLoad
		n.EffLoc = loc
		fs.nodes[in.Dst] = n

	case ir.OpIf:
		n := p.consumerNode(in)
		g.AddDep(n, fs.nodes[in.A])
		g.AddDep(n, fs.nodes[in.B])
		if p.control {
			fs.lastPred = n
		}

	case ir.OpNative:
		n := p.consumerNode(in)
		for _, a := range in.Args {
			g.AddDep(n, fs.nodes[a])
		}
		if in.Dst >= 0 {
			fs.nodes[in.Dst] = n
		}
	}
}

// BeforeCall implements interp.Tracer: it pushes the actuals' tracking data
// and the callee's object context (the caller chain extended with the
// receiver's allocation site; unchanged for static callees).
func (p *Profiler) BeforeCall(in *ir.Instr, caller *interp.Frame, callee *ir.Method, recv *interp.Object) {
	fs := p.fshadow(caller)
	if cap(p.pendingArgs) < len(in.Args) {
		p.pendingArgs = make([]*depgraph.Node, len(in.Args))
	}
	p.pendingArgs = p.pendingArgs[:len(in.Args)]
	for i, a := range in.Args {
		p.pendingArgs[i] = fs.nodes[a]
	}
	ctx := fs.ctx
	if recv != nil {
		ctx = contextenc.Extend(ctx, recv.Site)
	}
	p.pendingCtx = ctx
	p.havePending = true
}

// newFrameShadow returns a cleared shadow with room for n locals, reusing a
// pooled record when one fits.
func (p *Profiler) newFrameShadow(n int) *frameShadow {
	if len(p.fsPool) > 0 {
		fs := p.fsPool[len(p.fsPool)-1]
		p.fsPool = p.fsPool[:len(p.fsPool)-1]
		if cap(fs.nodes) < n {
			fs.nodes = make([]*depgraph.Node, n)
		} else {
			fs.nodes = fs.nodes[:n]
			for i := range fs.nodes {
				fs.nodes[i] = nil
			}
		}
		fs.ctx = contextenc.EmptyContext
		fs.slot = 0
		fs.lastPred = nil
		return fs
	}
	return &frameShadow{nodes: make([]*depgraph.Node, n)}
}

// EnterMethod implements interp.Tracer: formals receive the actuals'
// tracking data and the frame adopts the pushed context.
func (p *Profiler) EnterMethod(fr *interp.Frame, recv *interp.Object) {
	fs := p.newFrameShadow(fr.Method.NumLocals)
	if p.havePending {
		copy(fs.nodes, p.pendingArgs)
		fs.ctx = p.pendingCtx
		p.havePending = false
	} else if recv != nil {
		// Entry via CallMethod with a receiver: root the chain there.
		fs.ctx = contextenc.Extend(contextenc.EmptyContext, recv.Site)
	}
	fs.slot = p.slots.Slot(fs.ctx)
	fr.Shadow = fs
}

// BeforeReturn implements interp.Tracer: the return value's tracking data is
// pushed for the caller to pop.
func (p *Profiler) BeforeReturn(in *ir.Instr, fr *interp.Frame) {
	if in.HasA {
		p.pendingRet = p.fshadow(fr).nodes[in.A]
	} else {
		p.pendingRet = nil
	}
	// The frame pops right after this hook; reclaim its shadow. fr.Shadow
	// stays attached because wrapping tracers (e.g. MethodCostTracker) peek
	// at it synchronously after delegating here — the record is only reused
	// at the next EnterMethod, by which point the pop has fully completed.
	if fs, ok := fr.Shadow.(*frameShadow); ok {
		p.fsPool = append(p.fsPool, fs)
	}
}

// AfterCall implements interp.Tracer: a call site with a destination acts as
// an assignment from the returned value, creating a node in the caller's
// context.
func (p *Profiler) AfterCall(in *ir.Instr, caller *interp.Frame, hasValue bool) {
	ret := p.pendingRet
	p.pendingRet = nil
	if !hasValue || in == nil || in.Dst < 0 {
		return
	}
	fs := p.fshadow(caller)
	if !p.enabled {
		return
	}
	n := p.node(in, fs)
	p.G.AddDep(n, ret)
	fs.nodes[in.Dst] = n
}

var _ interp.Tracer = (*Profiler)(nil)

// NewFromGraph wraps a reloaded graph (depgraph.Decode) in a Profiler so
// offline analyses can use the same access paths as live ones. The returned
// profiler must not be attached to a machine.
func NewFromGraph(prog *ir.Program, g *depgraph.Graph) *Profiler {
	return &Profiler{
		G:       g,
		Prog:    prog,
		slots:   contextenc.NewSlots(16),
		thin:    true,
		statics: make([]*depgraph.Node, len(prog.Statics)),
		cr:      NewCRTracker(prog, 16),
	}
}
