package interp

import (
	"context"
	"fmt"
	"math/bits"

	"lowutil/internal/ir"
)

const (
	// DefaultMaxSteps bounds runaway programs.
	DefaultMaxSteps = int64(1) << 34
	// DefaultMaxDepth bounds call-stack depth.
	DefaultMaxDepth = 1 << 16
	// DBQueryCost is the synthetic work (in virtual instructions) charged
	// for each NativeDBQuery call; it models the database round-trip the
	// tradebeans/derby case studies pay per query.
	DBQueryCost = 500
	// cancelCheckMask gates the cancellation poll in the main loop: the
	// machine consults Ctx.Done() once every cancelCheckMask+1 executed
	// steps. 8192 steps is microseconds of interpretation, so cancellation
	// is prompt while the per-step cost stays one masked compare on the
	// already-maintained step counter (benchmarked at well under 2%
	// overhead on the profiler hot path).
	cancelCheckMask = 1<<13 - 1
)

// Machine executes an ir.Program. A Machine is single-use per Run but its
// configuration fields may be set freely before Run.
type Machine struct {
	Prog *ir.Program
	// Tracer, when non-nil, observes every executed instruction.
	Tracer Tracer
	// Ctx, when non-nil, is polled periodically by the main loop; once it
	// is done the run stops with a VMError of kind ErrCanceled whose Cause
	// is the context error. A nil Ctx costs nothing per step.
	Ctx context.Context
	// MaxSteps and MaxDepth bound execution; zero means the defaults.
	MaxSteps int64
	MaxDepth int
	// Seed seeds the deterministic PRNG behind NativeRand.
	Seed uint64
	// Prune, when non-nil, is indexed by ir.Instr.ID: marked instructions
	// execute normally but their events are not reported to the Tracer.
	// Produced by staticanalysis.PruneSet; valid only for tracers that
	// ignore base-pointer flow (thin slicing). Must be set before the first
	// Run/CallMethod: the handler-table dispatcher folds it into the
	// per-method tables it builds on first entry.
	Prune []bool
	// LegacyDispatch selects the original switch-based interpreter loop
	// instead of the pre-decoded handler tables. It is the differential
	// reference for the handler-table + inline-cache engine.
	LegacyDispatch bool

	// Statics holds static-field storage, indexed by StaticField.Slot.
	Statics []Value
	// Output collects values written by NativePrint/NativePrintChar.
	Output []int64

	// Steps counts executed instruction instances — the paper's #I.
	Steps int64
	// Allocs counts object and array allocations.
	Allocs int64
	// AllocsBySite counts allocations per allocation site.
	AllocsBySite []int64
	// NativeWork accumulates synthetic native cost (DB queries).
	NativeWork int64
	// AssertFailures counts NativeAssert calls with a zero argument.
	AssertFailures int64
	// PrunedEvents counts tracer events suppressed by Prune.
	PrunedEvents int64
	// ICHits/ICMisses count virtual dispatches resolved by the inline
	// caches vs. through the method-name lookup (handler-table engine only).
	ICHits   int64
	ICMisses int64

	frames     []*Frame
	rng        uint64
	clock      int64
	seq        int64
	lastReturn Value

	// Handler-table engine state: machine-local views of the per-method
	// dispatch tables (shared per program via ir.Program.TabCache, or
	// private when Prune is set), the per-method inline-cache slices (always
	// machine-private — the only mutable dispatch state), the base frame
	// index of the innermost loopUntil, and the single reusable event record
	// handed to the tracer. All indexed by Method.ID, built lazily.
	tabs     [][]dinstr
	ics      [][]icSite
	loopBase int
	ev       Event

	// framePool recycles frames popped by the return handlers. A popped
	// frame is never revisited, so pushCall reuses the record and its locals
	// slice; frames abandoned on error paths are simply dropped.
	framePool []*Frame
}

// New returns a Machine for prog with default limits.
func New(prog *ir.Program) *Machine {
	return &Machine{
		Prog:         prog,
		MaxSteps:     DefaultMaxSteps,
		MaxDepth:     DefaultMaxDepth,
		Seed:         0x9E3779B97F4A7C15,
		Statics:      make([]Value, len(prog.Statics)),
		AllocsBySite: make([]int64, prog.NumAllocSites()),
	}
}

// Depth returns the current call-stack depth.
func (m *Machine) Depth() int { return len(m.frames) }

// Frames returns the live call stack, innermost last. The returned slice is
// the machine's own; callers must not mutate it.
func (m *Machine) Frames() []*Frame { return m.frames }

// NewObject allocates a class instance as the VM would, without executing an
// instruction. Tests and clients use it to fabricate receivers.
func (m *Machine) NewObject(c *ir.Class, site int) *Object {
	m.seq++
	m.Allocs++
	fields := make([]Value, c.NumFieldSlots())
	for slot, isRef := range c.RefSlots() {
		if isRef {
			fields[slot] = Null
		}
	}
	return &Object{Class: c, Fields: fields, Site: site, Seq: m.seq}
}

// initStatics allocates static storage and nulls reference-typed slots.
func (m *Machine) initStatics() {
	if m.Statics != nil {
		return
	}
	m.Statics = make([]Value, len(m.Prog.Statics))
	for _, sf := range m.Prog.Statics {
		if sf.Type.IsRef() {
			m.Statics[sf.Slot] = Null
		}
	}
}

func (m *Machine) newArray(elem *ir.Type, n int64, site int) (*Object, error) {
	if n < 0 {
		return nil, fmt.Errorf("negative array length %d", n)
	}
	m.seq++
	m.Allocs++
	return &Object{Elems: make([]Value, n), ElemT: elem, Site: site, Seq: m.seq}, nil
}

func (m *Machine) fail(kind ErrKind, in *ir.Instr, fr *Frame, format string, args ...any) error {
	return &VMError{Kind: kind, In: in, Frame: fr, Msg: fmt.Sprintf(format, args...)}
}

func (m *Machine) nextRand() uint64 {
	// xorshift64*: deterministic, fast, good enough for workload shaping.
	x := m.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	m.rng = x
	return x * 0x2545F4914F6CDD1D
}

const floatBitsKey = 0x5A5A_C3C3_0F0F_9696

// packFloatBits is the NativeFloatToBits transform; it is a bijection so
// NativeBitsToFloat can invert it exactly, modelling
// Float.floatToIntBits/intBitsToFloat round-trips.
func packFloatBits(x int64) int64 {
	return int64(bits.RotateLeft64(uint64(x), 17) ^ floatBitsKey)
}

func unpackFloatBits(y int64) int64 {
	return int64(bits.RotateLeft64(uint64(y)^floatBitsKey, -17))
}

// Run executes the program's main method to completion and returns the VM
// error, if any.
func (m *Machine) Run() error {
	if m.MaxSteps == 0 {
		m.MaxSteps = DefaultMaxSteps
	}
	if m.MaxDepth == 0 {
		m.MaxDepth = DefaultMaxDepth
	}
	m.initStatics()
	if m.AllocsBySite == nil {
		m.AllocsBySite = make([]int64, m.Prog.NumAllocSites())
	}
	m.rng = m.Seed | 1

	entry := &Frame{
		Method: m.Prog.Main,
		Locals: make([]Value, m.Prog.Main.NumLocals),
		RetDst: -1,
	}
	if !m.LegacyDispatch {
		entry.tab, entry.ics = m.methodTab(entry.Method)
	}
	m.frames = append(m.frames[:0], entry)
	if m.Tracer != nil {
		m.Tracer.EnterMethod(entry, nil)
	}
	return m.loop()
}

// CallMethod invokes an arbitrary method with the given arguments and runs
// it to completion, returning the result. It is used by tests and by
// harnesses that drive individual methods.
func (m *Machine) CallMethod(method *ir.Method, args ...Value) (Value, error) {
	if m.MaxSteps == 0 {
		m.MaxSteps = DefaultMaxSteps
	}
	if m.MaxDepth == 0 {
		m.MaxDepth = DefaultMaxDepth
	}
	m.initStatics()
	if m.AllocsBySite == nil {
		m.AllocsBySite = make([]int64, m.Prog.NumAllocSites())
	}
	if m.rng == 0 {
		m.rng = m.Seed | 1
	}
	if len(args) != method.Params {
		return Null, fmt.Errorf("interp: %s takes %d args, got %d", method.QualifiedName(), method.Params, len(args))
	}
	fr := &Frame{Method: method, Locals: make([]Value, method.NumLocals), RetDst: -1}
	if !m.LegacyDispatch {
		fr.tab, fr.ics = m.methodTab(method)
	}
	copy(fr.Locals, args)
	base := len(m.frames)
	m.frames = append(m.frames, fr)
	var recv *Object
	if !method.Static && len(args) > 0 && args[0].K == ir.KindRef {
		recv = args[0].Ref
	}
	if m.Tracer != nil {
		m.Tracer.EnterMethod(fr, recv)
	}
	if err := m.loopUntil(base); err != nil {
		return Null, err
	}
	return m.lastReturn, nil
}

func (m *Machine) loop() error { return m.loopUntil(0) }

// loopUntil runs until the frame stack shrinks below base.
func (m *Machine) loopUntil(base int) error {
	if m.LegacyDispatch {
		return m.loopLegacy(base)
	}
	prevBase := m.loopBase
	m.loopBase = base
	defer func() { m.loopBase = prevBase }()
	var done <-chan struct{}
	if m.Ctx != nil {
		done = m.Ctx.Done()
	}
	for len(m.frames) > base {
		fr := m.frames[len(m.frames)-1]
		if uint(fr.PC) >= uint(len(fr.tab)) {
			return m.fail(ErrType, nil, fr, "pc %d out of range in %s", fr.PC, fr.Method.QualifiedName())
		}
		d := &fr.tab[fr.PC]
		m.Steps++
		if m.Steps > m.MaxSteps {
			return m.fail(ErrStepLimit, d.in, fr, "after %d steps", m.Steps-1)
		}
		if done != nil && m.Steps&cancelCheckMask == 0 {
			select {
			case <-done:
				err := m.fail(ErrCanceled, d.in, fr, "after %d steps", m.Steps)
				err.(*VMError).Cause = m.Ctx.Err()
				return err
			default:
			}
		}
		if err := d.fn(m, fr, d); err != nil {
			return err
		}
	}
	return nil
}

// loopLegacy is the original switch-dispatch interpreter loop.
func (m *Machine) loopLegacy(base int) error {
	var done <-chan struct{}
	if m.Ctx != nil {
		done = m.Ctx.Done()
	}
	for len(m.frames) > base {
		fr := m.frames[len(m.frames)-1]
		if fr.PC < 0 || fr.PC >= len(fr.Method.Code) {
			return m.fail(ErrType, nil, fr, "pc %d out of range in %s", fr.PC, fr.Method.QualifiedName())
		}
		in := &fr.Method.Code[fr.PC]
		m.Steps++
		if m.Steps > m.MaxSteps {
			return m.fail(ErrStepLimit, in, fr, "after %d steps", m.Steps-1)
		}
		if done != nil && m.Steps&cancelCheckMask == 0 {
			select {
			case <-done:
				err := m.fail(ErrCanceled, in, fr, "after %d steps", m.Steps)
				err.(*VMError).Cause = m.Ctx.Err()
				return err
			default:
			}
		}
		if err := m.step(fr, in, base); err != nil {
			return err
		}
	}
	return nil
}

// step executes one instruction. It advances fr.PC itself.
func (m *Machine) step(fr *Frame, in *ir.Instr, base int) error {
	loc := fr.Locals
	advance := true
	var ev Event
	traced := m.Tracer != nil
	if traced && m.Prune != nil && in.ID < len(m.Prune) && m.Prune[in.ID] {
		traced = false
		m.PrunedEvents++
	}

	switch in.Op {
	case ir.OpConst:
		if in.IsNull {
			loc[in.Dst] = Null
		} else {
			loc[in.Dst] = IntVal(in.Imm)
		}
		ev.Val = loc[in.Dst]

	case ir.OpMove:
		loc[in.Dst] = loc[in.A]
		ev.Val = loc[in.Dst]

	case ir.OpBin:
		a, b := loc[in.A], loc[in.B]
		if a.K == ir.KindRef || b.K == ir.KindRef {
			return m.fail(ErrType, in, fr, "arithmetic on reference")
		}
		var r int64
		switch in.Bin {
		case ir.Add:
			r = a.I + b.I
		case ir.Sub:
			r = a.I - b.I
		case ir.Mul:
			r = a.I * b.I
		case ir.Div:
			if b.I == 0 {
				return m.fail(ErrDivZero, in, fr, "")
			}
			r = a.I / b.I
		case ir.Rem:
			if b.I == 0 {
				return m.fail(ErrDivZero, in, fr, "")
			}
			r = a.I % b.I
		case ir.And:
			r = a.I & b.I
		case ir.Or:
			r = a.I | b.I
		case ir.Xor:
			r = a.I ^ b.I
		case ir.Shl:
			r = a.I << (uint64(b.I) & 63)
		case ir.Shr:
			r = a.I >> (uint64(b.I) & 63)
		default:
			return m.fail(ErrType, in, fr, "bad binop %v", in.Bin)
		}
		loc[in.Dst] = IntVal(r)
		ev.Val = loc[in.Dst]

	case ir.OpNeg:
		a := loc[in.A]
		if a.K == ir.KindRef {
			return m.fail(ErrType, in, fr, "negation of reference")
		}
		loc[in.Dst] = IntVal(-a.I)
		ev.Val = loc[in.Dst]

	case ir.OpNot:
		a := loc[in.A]
		if a.Truthy() {
			loc[in.Dst] = IntVal(0)
		} else {
			loc[in.Dst] = IntVal(1)
		}
		ev.Val = loc[in.Dst]

	case ir.OpNew:
		o := m.NewObject(in.Class, in.AllocSite)
		m.AllocsBySite[in.AllocSite]++
		loc[in.Dst] = RefVal(o)
		ev.New = o
		ev.Val = loc[in.Dst]

	case ir.OpNewArray:
		n := loc[in.A]
		if n.K == ir.KindRef {
			return m.fail(ErrType, in, fr, "array length is a reference")
		}
		o, err := m.newArray(in.Elem, n.I, in.AllocSite)
		if err != nil {
			return m.fail(ErrBounds, in, fr, "%v", err)
		}
		if in.Elem.IsRef() {
			for i := range o.Elems {
				o.Elems[i] = Null
			}
		}
		m.AllocsBySite[in.AllocSite]++
		loc[in.Dst] = RefVal(o)
		ev.New = o
		ev.Val = loc[in.Dst]

	case ir.OpLoadField:
		base, err := m.refOperand(in, fr, in.A, false)
		if err != nil {
			return err
		}
		if base.IsArray() || in.Field.Slot >= len(base.Fields) {
			return m.fail(ErrType, in, fr, "object %s has no field %s", base, in.Field.QualifiedName())
		}
		loc[in.Dst] = base.Fields[in.Field.Slot]
		ev.Base = base
		ev.Val = loc[in.Dst]

	case ir.OpStoreField:
		base, err := m.refOperand(in, fr, in.A, false)
		if err != nil {
			return err
		}
		if base.IsArray() || in.Field.Slot >= len(base.Fields) {
			return m.fail(ErrType, in, fr, "object %s has no field %s", base, in.Field.QualifiedName())
		}
		base.Fields[in.Field.Slot] = loc[in.B]
		ev.Base = base
		ev.Val = loc[in.B]

	case ir.OpLoadStatic:
		loc[in.Dst] = m.Statics[in.Static.Slot]
		ev.Val = loc[in.Dst]

	case ir.OpStoreStatic:
		m.Statics[in.Static.Slot] = loc[in.A]
		ev.Val = loc[in.A]

	case ir.OpALoad:
		arr, err := m.refOperand(in, fr, in.A, true)
		if err != nil {
			return err
		}
		idx := loc[in.B]
		if idx.K == ir.KindRef {
			return m.fail(ErrType, in, fr, "array index is a reference")
		}
		if idx.I < 0 || idx.I >= int64(len(arr.Elems)) {
			return m.fail(ErrBounds, in, fr, "index %d, length %d", idx.I, len(arr.Elems))
		}
		loc[in.Dst] = arr.Elems[idx.I]
		ev.Base, ev.Index = arr, idx.I
		ev.Val = loc[in.Dst]

	case ir.OpAStore:
		arr, err := m.refOperand(in, fr, in.A, true)
		if err != nil {
			return err
		}
		idx := loc[in.B]
		if idx.K == ir.KindRef {
			return m.fail(ErrType, in, fr, "array index is a reference")
		}
		if idx.I < 0 || idx.I >= int64(len(arr.Elems)) {
			return m.fail(ErrBounds, in, fr, "index %d, length %d", idx.I, len(arr.Elems))
		}
		arr.Elems[idx.I] = loc[in.C2]
		ev.Base, ev.Index = arr, idx.I
		ev.Val = loc[in.C2]

	case ir.OpArrayLen:
		arr, err := m.refOperand(in, fr, in.A, true)
		if err != nil {
			return err
		}
		loc[in.Dst] = IntVal(int64(len(arr.Elems)))
		ev.Base = arr
		ev.Val = loc[in.Dst]

	case ir.OpIf:
		taken, err := m.compare(in, fr)
		if err != nil {
			return err
		}
		if taken {
			fr.PC = in.Target
			advance = false
		}
		ev.Taken = taken

	case ir.OpGoto:
		fr.PC = in.Target
		return nil // no tracer event for pure control transfer

	case ir.OpInstanceOf:
		v := loc[in.A]
		if v.K != ir.KindRef {
			return m.fail(ErrType, in, fr, "instanceof on non-reference")
		}
		res := int64(0)
		if v.Ref != nil && !v.Ref.IsArray() && v.Ref.Class.IsSubclassOf(in.Class) {
			res = 1
		}
		loc[in.Dst] = IntVal(res)
		ev.Val = loc[in.Dst]

	case ir.OpCall:
		return m.doCall(fr, in)

	case ir.OpReturn:
		return m.doReturn(fr, in, base)

	case ir.OpNative:
		v, err := m.doNative(fr, in)
		if err != nil {
			return err
		}
		if in.Dst >= 0 {
			loc[in.Dst] = v
		}
		ev.Val = v

	default:
		return m.fail(ErrType, in, fr, "unknown opcode")
	}

	if traced {
		ev.In, ev.Frame = in, fr
		m.Tracer.Exec(&ev)
	}
	if advance {
		fr.PC++
	}
	return nil
}

// refOperand loads a non-null reference from slot s, failing with the
// appropriate VM error otherwise. wantArray selects array vs instance.
func (m *Machine) refOperand(in *ir.Instr, fr *Frame, s int, wantArray bool) (*Object, error) {
	v := fr.Locals[s]
	if v.K != ir.KindRef {
		return nil, m.fail(ErrType, in, fr, "expected reference in slot %d, got int", s)
	}
	if v.Ref == nil {
		return nil, m.fail(ErrNullDeref, in, fr, "")
	}
	if wantArray && !v.Ref.IsArray() {
		return nil, m.fail(ErrType, in, fr, "expected array, got %s", v.Ref)
	}
	return v.Ref, nil
}

func (m *Machine) compare(in *ir.Instr, fr *Frame) (bool, error) {
	a, b := fr.Locals[in.A], fr.Locals[in.B]
	if a.K == ir.KindRef || b.K == ir.KindRef {
		// Reference comparison: only identity equality is defined.
		if in.Cmp != ir.Eq && in.Cmp != ir.Ne {
			return false, m.fail(ErrType, in, fr, "ordered comparison of references")
		}
		var ar, br *Object
		if a.K == ir.KindRef {
			ar = a.Ref
		}
		if b.K == ir.KindRef {
			br = b.Ref
		}
		if a.K != b.K {
			// Comparing ref with int: only null-vs-0 idiom is tolerated as
			// inequality.
			return in.Cmp == ir.Ne, nil
		}
		eq := ar == br
		if in.Cmp == ir.Eq {
			return eq, nil
		}
		return !eq, nil
	}
	switch in.Cmp {
	case ir.Eq:
		return a.I == b.I, nil
	case ir.Ne:
		return a.I != b.I, nil
	case ir.Lt:
		return a.I < b.I, nil
	case ir.Le:
		return a.I <= b.I, nil
	case ir.Gt:
		return a.I > b.I, nil
	case ir.Ge:
		return a.I >= b.I, nil
	}
	return false, m.fail(ErrType, in, fr, "bad comparison")
}

func (m *Machine) doCall(fr *Frame, in *ir.Instr) error {
	callee := in.Callee
	var recv *Object
	if !callee.Static {
		v := fr.Locals[in.Args[0]]
		if v.K != ir.KindRef {
			return m.fail(ErrType, in, fr, "receiver is not a reference")
		}
		if v.Ref == nil {
			return m.fail(ErrNullDeref, in, fr, "call %s on null", callee.QualifiedName())
		}
		recv = v.Ref
		if recv.IsArray() {
			return m.fail(ErrType, in, fr, "method call on array")
		}
		// Virtual dispatch by name on the dynamic class.
		if target := recv.Class.LookupMethod(callee.Name); target != nil {
			callee = target
		} else {
			return m.fail(ErrType, in, fr, "class %s has no method %s", recv.Class.Name, callee.Name)
		}
	}
	if len(m.frames) >= m.MaxDepth {
		return m.fail(ErrStackOverflow, in, fr, "depth %d", len(m.frames))
	}
	if m.Tracer != nil {
		m.Tracer.BeforeCall(in, fr, callee, recv)
	}
	nf := &Frame{
		Method: callee,
		Locals: make([]Value, callee.NumLocals),
		RetDst: in.Dst,
		CallIn: in,
	}
	for i, a := range in.Args {
		nf.Locals[i] = fr.Locals[a]
	}
	m.frames = append(m.frames, nf)
	if m.Tracer != nil {
		m.Tracer.EnterMethod(nf, recv)
	}
	return nil
}

func (m *Machine) doReturn(fr *Frame, in *ir.Instr, base int) error {
	if m.Tracer != nil {
		m.Tracer.BeforeReturn(in, fr)
	}
	var ret Value
	if in.HasA {
		ret = fr.Locals[in.A]
	}
	m.frames = m.frames[:len(m.frames)-1]
	if len(m.frames) <= base {
		m.lastReturn = ret
		return nil
	}
	caller := m.frames[len(m.frames)-1]
	callIn := fr.CallIn
	if in.HasA && fr.RetDst >= 0 {
		caller.Locals[fr.RetDst] = ret
	}
	if m.Tracer != nil {
		m.Tracer.AfterCall(callIn, caller, in.HasA && fr.RetDst >= 0)
	}
	caller.PC++
	return nil
}

func (m *Machine) doNative(fr *Frame, in *ir.Instr) (Value, error) {
	arg := func(i int) Value {
		if i < len(in.Args) {
			return fr.Locals[in.Args[i]]
		}
		return IntVal(0)
	}
	argInt := func(i int) int64 {
		v := arg(i)
		if v.K == ir.KindRef {
			if v.Ref == nil {
				return 0
			}
			return v.Ref.Seq
		}
		return v.I
	}
	switch in.Native {
	case ir.NativePrint, ir.NativePrintChar:
		m.Output = append(m.Output, argInt(0))
		return IntVal(0), nil
	case ir.NativeRand:
		n := argInt(0)
		if n <= 0 {
			return IntVal(0), nil
		}
		return IntVal(int64(m.nextRand() % uint64(n))), nil
	case ir.NativeTime:
		m.clock++
		return IntVal(m.clock), nil
	case ir.NativeFloatToBits:
		return IntVal(packFloatBits(argInt(0))), nil
	case ir.NativeBitsToFloat:
		return IntVal(unpackFloatBits(argInt(0))), nil
	case ir.NativeAssert:
		if argInt(0) == 0 {
			m.AssertFailures++
		}
		return IntVal(0), nil
	case ir.NativeDBQuery:
		m.NativeWork += DBQueryCost
		var h uint64 = 0x9E3779B97F4A7C15
		for i := range in.Args {
			h = mix64(h ^ uint64(argInt(i)))
		}
		return IntVal(int64(h >> 1)), nil
	case ir.NativeHash:
		return IntVal(int64(mix64(uint64(argInt(0))) >> 1)), nil
	default:
		return IntVal(0), m.fail(ErrNative, in, fr, "unknown native %v", in.Native)
	}
}

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
