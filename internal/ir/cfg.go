package ir

// CFG is the control-flow graph of one method body: the instruction stream
// partitioned into maximal basic blocks with explicit successor/predecessor
// edges. It is the substrate the static analyses (internal/staticanalysis)
// and the structural validator share: branch structure is computed once, here,
// instead of being re-derived from instruction indices at every use site.
type CFG struct {
	Method *Method
	Blocks []Block
	// BlockOf maps each pc to the index of its containing block.
	BlockOf []int
	// RPO lists the blocks reachable from the entry in reverse postorder
	// (every block appears before its successors, loops aside). Blocks not
	// listed are unreachable from the entry.
	RPO []int
	// rpoIndex[b] is the position of block b in RPO, or -1 if unreachable.
	rpoIndex []int
}

// Block is one basic block: the half-open instruction range [Start, End).
// A block is maximal: it begins at a leader (entry, branch target, or the
// instruction after a branch/return) and ends at the next terminator or
// leader.
type Block struct {
	ID         int
	Start, End int
	Succs      []int
	Preds      []int
	// FallsOff marks a block whose control continues past the end of the
	// method body: its last instruction neither returns nor jumps, and no
	// instruction follows. Such a block gets no successors; the validator
	// rejects it when reachable.
	FallsOff bool
}

// Last returns the pc of the block's last instruction.
func (b *Block) Last() int { return b.End - 1 }

// NewCFG partitions m's body into basic blocks and links them. The body may
// be arbitrary (even invalid) as long as branch targets are in range; the
// validator checks target ranges before building the CFG.
func NewCFG(m *Method) *CFG {
	n := len(m.Code)
	c := &CFG{Method: m, BlockOf: make([]int, n)}
	if n == 0 {
		return c
	}

	// Mark leaders.
	leader := make([]bool, n)
	leader[0] = true
	for pc := range m.Code {
		in := &m.Code[pc]
		switch in.Op {
		case OpGoto:
			leader[in.Target] = true
			if pc+1 < n {
				leader[pc+1] = true
			}
		case OpIf:
			leader[in.Target] = true
			if pc+1 < n {
				leader[pc+1] = true
			}
		case OpReturn:
			if pc+1 < n {
				leader[pc+1] = true
			}
		}
	}

	// Carve blocks.
	for pc := 0; pc < n; {
		start := pc
		pc++
		for pc < n && !leader[pc] {
			pc++
		}
		id := len(c.Blocks)
		c.Blocks = append(c.Blocks, Block{ID: id, Start: start, End: pc})
		for i := start; i < pc; i++ {
			c.BlockOf[i] = id
		}
	}

	// Link successors.
	for i := range c.Blocks {
		b := &c.Blocks[i]
		last := &m.Code[b.Last()]
		switch last.Op {
		case OpReturn:
			// terminal
		case OpGoto:
			b.Succs = append(b.Succs, c.BlockOf[last.Target])
		case OpIf:
			b.Succs = append(b.Succs, c.BlockOf[last.Target])
			if b.End < n {
				b.Succs = append(b.Succs, c.BlockOf[b.End])
			} else {
				b.FallsOff = true
			}
		default:
			if b.End < n {
				b.Succs = append(b.Succs, c.BlockOf[b.End])
			} else {
				b.FallsOff = true
			}
		}
	}
	for i := range c.Blocks {
		for _, s := range c.Blocks[i].Succs {
			c.Blocks[s].Preds = append(c.Blocks[s].Preds, i)
		}
	}

	c.computeRPO()
	return c
}

// computeRPO runs an iterative DFS from the entry block and records the
// reverse postorder of the reachable subgraph.
func (c *CFG) computeRPO() {
	nb := len(c.Blocks)
	c.rpoIndex = make([]int, nb)
	for i := range c.rpoIndex {
		c.rpoIndex[i] = -1
	}
	if nb == 0 {
		return
	}
	state := make([]uint8, nb) // 0 unvisited, 1 on stack, 2 done
	type frame struct {
		b, i int
	}
	var post []int
	stack := []frame{{b: 0}}
	state[0] = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		succs := c.Blocks[f.b].Succs
		if f.i < len(succs) {
			s := succs[f.i]
			f.i++
			if state[s] == 0 {
				state[s] = 1
				stack = append(stack, frame{b: s})
			}
			continue
		}
		state[f.b] = 2
		post = append(post, f.b)
		stack = stack[:len(stack)-1]
	}
	c.RPO = make([]int, len(post))
	for i, b := range post {
		pos := len(post) - 1 - i
		c.RPO[pos] = b
		c.rpoIndex[b] = pos
	}
}

// Reachable reports whether block b is reachable from the entry.
func (c *CFG) Reachable(b int) bool { return c.rpoIndex[b] >= 0 }

// RPOIndex returns the position of block b in the reverse postorder, or -1
// if b is unreachable.
func (c *CFG) RPOIndex(b int) int { return c.rpoIndex[b] }

// NumBlocks returns the number of basic blocks.
func (c *CFG) NumBlocks() int { return len(c.Blocks) }
