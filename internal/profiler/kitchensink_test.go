package profiler_test

import (
	"testing"

	"lowutil/internal/clients"
	"lowutil/internal/costben"
	"lowutil/internal/deadness"
	"lowutil/internal/depgraph"
	"lowutil/internal/interp"
	"lowutil/internal/profiler"
	"lowutil/internal/taint"
	"lowutil/internal/testprogs"
)

// TestKitchenSinkUnderEveryTracer runs a program containing every opcode
// under each tracer configuration and sanity-checks the results — full
// instruction-kind coverage of the Figure 4 rules and their siblings.
func TestKitchenSinkUnderEveryTracer(t *testing.T) {
	prog := testprogs.KitchenSink()

	t.Run("plain", func(t *testing.T) {
		m := interp.New(prog)
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
	})

	for _, cfg := range []struct {
		name string
		opts profiler.Options
	}{
		{"thin", profiler.Options{Slots: 8}},
		{"traditional", profiler.Options{Slots: 8, Traditional: true}},
		{"unabstracted", profiler.Options{Unabstracted: true, UnabstractedCap: 4}},
		{"control", profiler.Options{Slots: 8, TrackControl: true}},
		{"cr", profiler.Options{Slots: 8, TrackCR: true}},
	} {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			p := profiler.New(prog, cfg.opts)
			m := interp.New(prog)
			m.Tracer = p
			if err := m.Run(); err != nil {
				t.Fatal(err)
			}
			if p.G.NumNodes() == 0 || p.G.NumDepEdges() == 0 {
				t.Error("empty graph")
			}
			an := costben.NewAnalysis(p.G)
			if len(an.RankBySite(4)) == 0 {
				t.Error("empty ranking")
			}
			res := deadness.Analyze(p.G, m.Steps)
			if res.IPD() < 0 || res.IPD() > 100 {
				t.Errorf("IPD out of range: %v", res.IPD())
			}
		})
	}

	t.Run("taint", func(t *testing.T) {
		tr := taint.New(prog)
		m := interp.New(prog)
		m.Tracer = tr
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("nullprop", func(t *testing.T) {
		nt := clients.NewNullTracker(prog)
		m := interp.New(prog)
		m.Tracer = nt
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if nt.G.NumNodes() == 0 {
			t.Error("empty null graph")
		}
	})

	t.Run("copyprofile", func(t *testing.T) {
		cp := clients.NewCopyProfiler(prog)
		m := interp.New(prog)
		m.Tracer = cp
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if cp.TotalCopies == 0 {
			t.Error("no copies recorded")
		}
	})

	t.Run("rewrites+predicates", func(t *testing.T) {
		rw := clients.NewRewriteTracker(prog)
		m := interp.New(prog)
		m.Tracer = rw
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		pt := clients.NewPredicateTracker(prog)
		m2 := interp.New(prog)
		m2.Tracer = pt
		if err := m2.Run(); err != nil {
			t.Fatal(err)
		}
		if len(pt.Constants(1)) == 0 {
			t.Error("the never-taken branch should be constant")
		}
	})
}

// TestUnabstractedCapFolds: beyond the cap, instances fold into the last
// node instead of growing the graph.
func TestUnabstractedCapFolds(t *testing.T) {
	fig := testprogs.Figure3(50, 5)
	p := profiler.New(fig.Prog, profiler.Options{Unabstracted: true, UnabstractedCap: 3})
	m := interp.New(fig.Prog)
	m.Tracer = p
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	maxPerInstr := 0
	counts := map[int]int{}
	p.G.Nodes(func(n *depgraph.Node) {
		counts[n.In.ID]++
		if counts[n.In.ID] > maxPerInstr {
			maxPerInstr = counts[n.In.ID]
		}
	})
	if maxPerInstr > 4 {
		t.Errorf("cap not enforced: %d nodes for one instruction", maxPerInstr)
	}
}
