package fuzzgen

import (
	"fmt"
	"io"
	"time"
)

// Options configures one fuzzing run.
type Options struct {
	// Seed is the root seed; program i runs with deriveSeed(Seed, i).
	Seed uint64
	// N is the number of programs to generate. 0 means unbounded (a
	// Deadline must then stop the run).
	N int
	// Deadline, when positive, stops the run after the elapsed wall time.
	Deadline time.Duration
	// MaxFailures stops the run early once this many failing programs have
	// been recorded (default 3): each failure costs a shrink, and a broken
	// invariant tends to fail on most seeds.
	MaxFailures int
	// Config overrides the generator shape; zero value means DefaultConfig.
	Config Config
	// Log, when non-nil, receives one progress line per 50 programs.
	Log io.Writer
}

// Failure is one generated program that violated an invariant, plus its
// shrunk reproducer.
type Failure struct {
	Seed      uint64 `json:"seed"`
	Index     int    `json:"index"`
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
	Source    string `json:"source"`
	Shrunk    string `json:"shrunk"`
}

// Summary is the result of a fuzzing run. With a fixed Seed and N (and no
// Deadline) every field is a pure function of the inputs, so two runs
// produce byte-identical summaries.
type Summary struct {
	Seed       uint64           `json:"seed"`
	Programs   int              `json:"programs"`
	Checks     int64            `json:"checks"`
	Invariants []string         `json:"invariants"`
	PerCheck   map[string]int64 `json:"per_check"`
	Failures   []Failure        `json:"failures"`
}

// Run generates programs from the seed and checks every invariant on each,
// shrinking any failure to a minimal reproducer.
func Run(opts Options) Summary {
	cfg := opts.Config
	if cfg == (Config{}) {
		cfg = DefaultConfig
	}
	maxFail := opts.MaxFailures
	if maxFail <= 0 {
		maxFail = 3
	}
	sum := Summary{
		Seed:       opts.Seed,
		Invariants: invariantNames(),
		PerCheck:   make(map[string]int64),
	}
	for _, name := range sum.Invariants {
		sum.PerCheck[name] = 0
	}
	var stop time.Time
	if opts.Deadline > 0 {
		stop = time.Now().Add(opts.Deadline)
	}
	for i := 0; ; i++ {
		if opts.N > 0 && i >= opts.N {
			break
		}
		if opts.N <= 0 && opts.Deadline <= 0 {
			break
		}
		if !stop.IsZero() && !time.Now().Before(stop) {
			break
		}
		if len(sum.Failures) >= maxFail {
			break
		}
		seed := deriveSeed(opts.Seed, i)
		prog := Generate(seed, cfg)
		src := prog.Render()
		c := newCaseRun(src)
		for _, inv := range Invariants() {
			err := inv.check(c)
			sum.Checks++
			sum.PerCheck[inv.Name]++
			if err == nil || err == errSkip {
				continue
			}
			class := FailureClass(err.Error())
			shrunk := Shrink(prog, func(cand string) bool {
				failed, detail := CheckNamed(inv.Name, cand)
				return failed && FailureClass(detail) == class
			})
			sum.Failures = append(sum.Failures, Failure{
				Seed:      seed,
				Index:     i,
				Invariant: inv.Name,
				Detail:    err.Error(),
				Source:    src,
				Shrunk:    shrunk.Render(),
			})
			// One failure per program: later invariants on a broken
			// program usually fail for the same root cause.
			break
		}
		sum.Programs++
		if opts.Log != nil && (i+1)%50 == 0 {
			fmt.Fprintf(opts.Log, "fuzz: %d programs, %d checks, %d failures\n",
				sum.Programs, sum.Checks, len(sum.Failures))
		}
	}
	return sum
}
