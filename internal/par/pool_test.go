package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolBoundsParallelism submits more tasks than workers and asserts the
// observed concurrency never exceeds the pool size while every task runs.
func TestPoolBoundsParallelism(t *testing.T) {
	const workers, tasks = 3, 20
	p := NewPool(workers)
	defer p.Close()

	var cur, max, ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < tasks; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ok := p.Do(func() {
				n := cur.Add(1)
				for {
					m := max.Load()
					if n <= m || max.CompareAndSwap(m, n) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				cur.Add(-1)
				ran.Add(1)
			})
			if !ok {
				t.Error("Do returned false on an open pool")
			}
		}()
	}
	wg.Wait()
	if ran.Load() != tasks {
		t.Errorf("ran %d tasks, want %d", ran.Load(), tasks)
	}
	if max.Load() > workers {
		t.Errorf("observed %d concurrent tasks, pool bound is %d", max.Load(), workers)
	}
}

// TestPoolClose asserts Close is idempotent, waits for in-flight work, and
// makes later submissions report false.
func TestPoolClose(t *testing.T) {
	p := NewPool(1)
	started := make(chan struct{})
	var finished atomic.Bool
	go p.Do(func() {
		close(started)
		time.Sleep(10 * time.Millisecond)
		finished.Store(true)
	})
	<-started
	p.Close()
	if !finished.Load() {
		t.Error("Close returned before the in-flight task finished")
	}
	p.Close() // idempotent
	if p.Do(func() {}) {
		t.Error("Do succeeded on a closed pool")
	}
}
