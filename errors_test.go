package lowutil

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"lowutil/internal/interp"
)

// spinSrc loops forever so cancellation tests have something to interrupt.
const spinSrc = `
class Main {
	static void main() {
		int i = 0;
		while (true) { i = i + 1; }
	}
}
`

func TestCompileErrorPosition(t *testing.T) {
	_, err := Compile("class Main { static void main() { print(x); } }")
	if err == nil {
		t.Fatal("compile of undefined variable succeeded")
	}
	var ce *CompileError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v (%T) is not a *CompileError", err, err)
	}
	if ce.Line <= 0 || ce.Col <= 0 {
		t.Errorf("CompileError carries no position: line=%d col=%d", ce.Line, ce.Col)
	}
	if ce.Msg == "" {
		t.Error("CompileError has empty Msg")
	}
}

func TestCompileErrorParse(t *testing.T) {
	_, err := Compile("class Main { static void main( } }")
	var ce *CompileError
	if !errors.As(err, &ce) {
		t.Fatalf("parse failure %v (%T) is not a *CompileError", err, err)
	}
	if ce.Line <= 0 {
		t.Errorf("parse CompileError has no line: %+v", ce)
	}
}

func TestRunContextCanceled(t *testing.T) {
	prog, err := Compile(spinSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = prog.RunContext(ctx)
	if err == nil {
		t.Fatal("canceled run returned nil error")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("errors.Is(err, ErrCanceled) = false for %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
}

func TestProfileContextDeadline(t *testing.T) {
	prog, err := Compile(spinSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = prog.ProfileContext(ctx)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ErrCanceled wrapping DeadlineExceeded, got %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancellation took %v", d)
	}
}

func TestProfileErrorWrapsVMError(t *testing.T) {
	prog, err := Compile(`
class Main {
	static void main() {
		int[] a = new int[2];
		print(a[5]);
	}
}
`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = prog.ProfileContext(context.Background())
	if err == nil {
		t.Fatal("out-of-bounds run succeeded")
	}
	var pe *ProfileError
	if !errors.As(err, &pe) || pe.Stage != "run" {
		t.Fatalf("want *ProfileError stage run, got %v (%T)", err, err)
	}
	var vm *interp.VMError
	if !errors.As(err, &vm) || vm.Kind != interp.ErrBounds {
		t.Fatalf("VMError kind not visible through chain: %v", err)
	}
	if errors.Is(err, ErrCanceled) {
		t.Error("bounds error must not satisfy ErrCanceled")
	}
}

func TestProfileContextOptions(t *testing.T) {
	prog, err := Compile(`
class Main {
	static void main() {
		int[] a = new int[4];
		a[0] = 7;
		print(a[0]);
	}
}
`)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := prog.ProfileContext(context.Background(),
		WithSlots(8), WithTreeHeight(2), WithPrune(), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if pr.height != 2 {
		t.Errorf("WithTreeHeight(2) not applied: height=%d", pr.height)
	}
	// Defaults fold first: zero-value opts get the paper's configuration.
	o := applyProfileOptions(nil)
	if o.Slots != DefaultSlots || o.TreeHeight != DefaultTreeHeight {
		t.Errorf("DefaultOptions not applied: %+v", o)
	}
}

func TestStaticSliceContext(t *testing.T) {
	prog, err := Compile(`
class Main {
	static void main() {
		int[] a = new int[4];
		a[1] = 3;
		print(a[1]);
	}
}
`)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := prog.StaticSliceContext(context.Background(), WithMode("rta"), WithTop(5))
	if err != nil {
		t.Fatal(err)
	}
	v1, err := prog.StaticSlice(SliceOptions{Mode: "rta", Top: 5})
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Error("v1 and v2 static slice reports differ")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := prog.StaticSliceContext(ctx); !errors.Is(err, ErrCanceled) {
		t.Errorf("canceled slice: want ErrCanceled, got %v", err)
	}
}

// TestDeprecatedShims pins the context-free wrappers (Run, Profile, and the
// audit-specific With* options) to their replacements: identical results,
// so external callers on the v1 surface see no behavior change.
func TestDeprecatedShims(t *testing.T) {
	prog, err := Compile(quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	v1run, err := prog.Run()
	if err != nil {
		t.Fatal(err)
	}
	v2run, err := prog.RunContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(v1run) != fmt.Sprint(v2run) {
		t.Errorf("Run shim diverges: %+v vs %+v", v1run, v2run)
	}

	v1prof, err := prog.Profile(ProfileOptions{Slots: 8})
	if err != nil {
		t.Fatal(err)
	}
	v2prof, err := prog.ProfileContext(ctx, WithSlots(8))
	if err != nil {
		t.Fatal(err)
	}
	if v1prof.Report(5) != v2prof.Report(5) {
		t.Error("Profile shim report diverges from ProfileContext")
	}

	v1audit, err := prog.StaticAudit(ctx, WithAuditMode("cha"), WithAuditObjCtx(), WithAuditTop(3))
	if err != nil {
		t.Fatal(err)
	}
	v2audit, err := prog.StaticAudit(ctx, WithMode("cha"), WithObjCtx(), WithTop(3))
	if err != nil {
		t.Fatal(err)
	}
	if v1audit != v2audit {
		t.Error("audit-specific option shims diverge from the shared options")
	}
}

func TestWithMaxSteps(t *testing.T) {
	prog, err := Compile(spinSrc)
	if err != nil {
		t.Fatal(err)
	}
	_, err = prog.ProfileContext(context.Background(), WithMaxSteps(5000))
	var vm *interp.VMError
	if !errors.As(err, &vm) || vm.Kind != interp.ErrStepLimit {
		t.Fatalf("want step-limit error, got %v", err)
	}
}
