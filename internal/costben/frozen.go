package costben

// The frozen analysis path computes HRAC (Definition 5) for every node in
// one sweep, and HRAB (Definition 6) likewise, instead of one graph
// traversal per query.
//
// HRAC/HRAB are sums over *reachability sets*, not over paths, so they do
// not distribute over a plain topological DP: a diamond would count the
// shared tail twice. The sweep therefore works on the SCC condensation of
// the boundary-restricted graph (heap readers backward, heap writers and
// consumers forward; boundary nodes lose their out-edges and become
// singleton components) and runs a batched transitive closure: 64 sources
// at a time carry a bitmask per component, masks propagate along condensed
// edges in one descending pass (components are in reverse topological
// order), and each component adds its weight to every source whose bit
// reached it. Per-component weights encode the paper's counting rules, so
// the result is bit-identical to the legacy per-node traversal.

import (
	"math/bits"
	"sort"
	"sync"

	"lowutil/internal/depgraph"
)

// dpData holds every snapshot-derived array the frozen analysis reads:
// per-node HRAC/HRAB (dense node ID index) and per-location RAC/RAB (dense
// Locs index). All of it is a pure function of the immutable snapshot, so
// it is memoized on the snapshot itself — repeated analyses over the same
// graph pay only once.
type dpData struct {
	hrac     []int64
	hrab     []int64
	consumed []bool
	rac      []float64
	rab      []float64
}

type dpKey struct{}

// dpFor returns the (possibly cached) DP arrays for s.
func dpFor(s *depgraph.Snapshot) *dpData {
	return s.Memo(dpKey{}, func() any {
		d := &dpData{}
		d.hrac, _ = closureSums(s, false)
		d.hrab, d.consumed = closureSums(s, true)

		// Per-location means over the store/load CSR rows (Definitions 5/6):
		// RAC is the mean HRAC of the location's stores, RAB the mean HRAB
		// of its loads — InfiniteRAB if any load's value reaches a consumer.
		d.rac = make([]float64, len(s.Locs))
		d.rab = make([]float64, len(s.Locs))
		for li := range s.Locs {
			if row := s.Store[s.StoreStart[li]:s.StoreStart[li+1]]; len(row) > 0 {
				var sum int64
				for _, id := range row {
					sum += d.hrac[id]
				}
				d.rac[li] = float64(sum) / float64(len(row))
			}
			if row := s.Load[s.LoadStart[li]:s.LoadStart[li+1]]; len(row) > 0 {
				var sum int64
				infinite := false
				for _, id := range row {
					if d.consumed[id] {
						infinite = true
					}
					sum += d.hrab[id]
				}
				if infinite {
					d.rab[li] = InfiniteRAB
				} else {
					d.rab[li] = float64(sum) / float64(len(row))
				}
			}
		}
		return d
	}).(*dpData)
}

// treeScratch is the reusable BFS state of aggregateFrozen.
type treeScratch struct {
	depth []int32 // -1 = unvisited; reset via queue after each use
	queue []int32
	vals  []float64
}

var scratchPool sync.Pool

func getScratch(n int) *treeScratch {
	sc, _ := scratchPool.Get().(*treeScratch)
	if sc == nil || len(sc.depth) < n {
		sc = &treeScratch{depth: make([]int32, n)}
		for i := range sc.depth {
			sc.depth[i] = -1
		}
	}
	return sc
}

func putScratch(sc *treeScratch) {
	for _, v := range sc.queue {
		sc.depth[v] = -1
	}
	sc.queue = sc.queue[:0]
	sc.vals = sc.vals[:0]
	scratchPool.Put(sc)
}

// aggregateFrozen is the CSR counterpart of Analysis.aggregate: a BFS over
// the points-to child rows collects RT_root (first visit keeps the
// shallowest depth, like the legacy ObjectTree), and every field of every
// owner at depth < height contributes its precomputed per-location metric.
// Values are summed in sorted order, exactly like the legacy path, so the
// float result is bit-identical.
func aggregateFrozen(s *depgraph.Snapshot, dp *dpData, root int32, height int, benefit bool) (float64, bool) {
	sc := getScratch(s.NumNodes())
	defer putScratch(sc)

	sc.queue = append(sc.queue, root)
	sc.depth[root] = 0
	consumed := false
	for qi := 0; qi < len(sc.queue); qi++ {
		v := sc.queue[qi]
		d := sc.depth[v]
		if d >= int32(height) {
			continue // fringe owners neither contribute nor expand
		}
		for k := s.OwnerFieldStart[v]; k < s.OwnerFieldStart[v+1]; k++ {
			li := s.OwnerLoc[k]
			val := dp.rac[li]
			if benefit {
				val = dp.rab[li]
			}
			if val == InfiniteRAB {
				consumed = true
				val = ConsumedRAB
			}
			sc.vals = append(sc.vals, val)
		}
		for k := s.ChildStart[v]; k < s.ChildStart[v+1]; k++ {
			c := s.Child[k]
			if sc.depth[c] < 0 {
				sc.depth[c] = d + 1
				sc.queue = append(sc.queue, c)
			}
		}
	}
	sort.Float64s(sc.vals)
	total := 0.0
	for _, v := range sc.vals {
		total += v
	}
	return total, consumed
}

// closureSums runs the batched closure. forward=false computes HRAC over
// dep edges with heap readers as boundary; forward=true computes HRAB over
// use edges with consumers and heap writers as boundary (consumers are
// counted sinks, writers uncounted). The seed node itself is always counted
// and always traversed, even when it is a boundary node.
func closureSums(s *depgraph.Snapshot, forward bool) (vals []int64, consumed []bool) {
	n := s.NumNodes()
	vals = make([]int64, n)
	if forward {
		consumed = make([]bool, n)
	}
	if n == 0 {
		return vals, consumed
	}

	boundary := make([]bool, n)
	for i := 0; i < n; i++ {
		if forward {
			boundary[i] = s.Consumer[i] || s.Eff[i] == depgraph.EffStore
		} else {
			boundary[i] = s.Eff[i] == depgraph.EffLoad
		}
	}
	c := s.Condense(forward, boundary)
	nc := c.NumComps

	// Per-component weight and consumer flag. Interior members count their
	// frequency; reached boundary nodes count only if they are consumers
	// (forward), which also marks the source consumed.
	compW := make([]int64, nc)
	var compCons []bool
	if forward {
		compCons = make([]bool, nc)
	}
	for ci := 0; ci < nc; ci++ {
		for _, v := range c.Members(int32(ci)) {
			switch {
			case !boundary[v]:
				compW[ci] += s.Freq[v]
			case forward && s.Consumer[v]:
				compW[ci] += s.Freq[v]
				compCons[ci] = true
			}
		}
	}

	// One source per interior component (seeded with its own bit: the seed
	// and its cycle-mates count themselves) and one per boundary node
	// (seeded with the components of its direct targets; its own component
	// is excluded so a cycle back to a consumer seed does not re-count it —
	// the legacy walk marks the seed visited up front).
	type source struct {
		node int32 // boundary node ID, or -1 for an interior component
		comp int32
	}
	var sources []source
	compSrc := make([]int32, nc)
	nodeSrc := make([]int32, n)
	for ci := 0; ci < nc; ci++ {
		members := c.Members(int32(ci))
		if len(members) == 1 && boundary[members[0]] {
			compSrc[ci] = -1
			continue
		}
		compSrc[ci] = int32(len(sources))
		sources = append(sources, source{node: -1, comp: int32(ci)})
	}
	for v := 0; v < n; v++ {
		if boundary[v] {
			nodeSrc[v] = int32(len(sources))
			sources = append(sources, source{node: int32(v), comp: c.CompOf[v]})
		}
	}

	start, adj := s.DepStart, s.Dep
	if forward {
		start, adj = s.UseStart, s.Use
	}

	srcVal := make([]int64, len(sources))
	srcCons := make([]bool, len(sources))
	mask := make([]uint64, nc)
	for base := 0; base < len(sources); base += 64 {
		batch := sources[base:min(base+64, len(sources))]
		for i := range mask {
			mask[i] = 0
		}
		for b, src := range batch {
			bit := uint64(1) << b
			if src.node < 0 {
				mask[src.comp] |= bit
			} else {
				for _, t := range adj[start[src.node]:start[src.node+1]] {
					mask[c.CompOf[t]] |= bit
				}
			}
		}
		// Condensed edges always point to smaller component indices, so one
		// descending pass completes the closure.
		for ci := nc - 1; ci >= 0; ci-- {
			m := mask[ci]
			if m == 0 {
				continue
			}
			for _, t := range c.Succs(int32(ci)) {
				mask[t] |= m
			}
		}
		for ci := 0; ci < nc; ci++ {
			m := mask[ci]
			if m == 0 {
				continue
			}
			w := compW[ci]
			cons := forward && compCons[ci]
			if w == 0 && !cons {
				continue
			}
			for m != 0 {
				b := bits.TrailingZeros64(m)
				m &= m - 1
				src := batch[b]
				if src.node >= 0 && src.comp == int32(ci) {
					continue // boundary seed's own component: counted as Freq below
				}
				srcVal[base+b] += w
				if cons {
					srcCons[base+b] = true
				}
			}
		}
	}

	for i := 0; i < n; i++ {
		var k int32
		if boundary[i] {
			k = nodeSrc[i]
			vals[i] = s.Freq[i] + srcVal[k]
		} else {
			k = compSrc[c.CompOf[i]]
			vals[i] = srcVal[k]
		}
		if forward {
			consumed[i] = srcCons[k]
		}
	}
	return vals, consumed
}
