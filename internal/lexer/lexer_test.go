package lexer

import (
	"strings"
	"testing"
	"testing/quick"
)

func kinds(t *testing.T, src string) []Kind {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("tokenize %q: %v", src, err)
	}
	out := make([]Kind, len(toks))
	for i, tok := range toks {
		out[i] = tok.Kind
	}
	return out
}

func TestKeywordsVsIdents(t *testing.T) {
	got := kinds(t, "class classy int intx this thisone")
	want := []Kind{KwClass, Ident, KwInt, Ident, KwThis, Ident}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", got, want)
		}
	}
}

func TestOperatorsMaximalMunch(t *testing.T) {
	cases := map[string][]Kind{
		"<= < << =":  {Le, Lt, Shl, Assign},
		">= > >> ==": {Ge, Gt, Shr, Eq},
		"!= ! =":     {Ne, Bang, Assign},
		"&& & |":     {AmpAmp, Amp, Pipe},
		"|| ^ %":     {PipePipe, Caret, Percent},
	}
	for src, want := range cases {
		got := kinds(t, src)
		if len(got) != len(want) {
			t.Fatalf("%q: %v want %v", src, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%q: %v want %v", src, got, want)
			}
		}
	}
}

func TestIntAndCharLiterals(t *testing.T) {
	toks, err := Tokenize(`0 42 123456789 'a' '\n' '\\' '\'' '\0'`)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 42, 123456789, 'a', '\n', '\\', '\'', 0}
	for i, w := range want {
		if toks[i].Int != w {
			t.Errorf("literal %d = %d, want %d", i, toks[i].Int, w)
		}
	}
}

func TestIntOverflowRejected(t *testing.T) {
	if _, err := Tokenize("99999999999999999999999999"); err == nil {
		t.Error("want overflow error")
	}
}

func TestCommentsSkipped(t *testing.T) {
	got := kinds(t, `
a // rest of line ignored ; { }
/* block
   spanning */ b /*inline*/ c`)
	if len(got) != 3 || got[0] != Ident || got[1] != Ident || got[2] != Ident {
		t.Fatalf("kinds = %v", got)
	}
}

func TestUnterminatedConstructs(t *testing.T) {
	for _, src := range []string{"/* never closed", "'a", "'", `'\q'`, "@"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("%q: want error", src)
		}
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("a\n  b\n\tc")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
	if toks[2].Pos.Line != 3 {
		t.Errorf("c at %v", toks[2].Pos)
	}
}

// Property: any sequence of identifier-ish words round-trips through the
// lexer with the same count and spelling.
func TestIdentRoundTripProperty(t *testing.T) {
	f := func(words []uint16) bool {
		var names []string
		for _, w := range words {
			names = append(names, "id"+string(rune('a'+w%26))+string(rune('a'+(w>>8)%26)))
		}
		src := strings.Join(names, " ")
		toks, err := Tokenize(src)
		if err != nil || len(toks) != len(names) {
			return false
		}
		for i, tok := range toks {
			if tok.Kind != Ident || tok.Text != names[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every nonnegative int literal round-trips.
func TestIntRoundTripProperty(t *testing.T) {
	f := func(v uint32) bool {
		toks, err := Tokenize(Token{Kind: IntLit, Int: int64(v)}.String())
		return err == nil && len(toks) == 1 && toks[0].Kind == IntLit && toks[0].Int == int64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
