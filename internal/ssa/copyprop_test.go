package ssa

import (
	"testing"

	"lowutil/internal/ir"
)

// TestCopyPropChain: a chain of moves collapses to the original value.
func TestCopyPropChain(t *testing.T) {
	var srcPC, endPC int
	_, m := buildMain(t, 0, func(_ *ir.Builder, bb *ir.BodyBuilder) {
		srcPC = bb.Const(0, 5)
		bb.Move(1, 0)
		bb.Move(2, 1)
		endPC = bb.Move(3, 2)
		bb.Native(-1, ir.NativePrint, 3)
		bb.ReturnVoid()
	})
	f := Build(m, nil)
	rep := CopyProp(f)
	if rep[f.DefOf[endPC]] != f.DefOf[srcPC] {
		t.Fatalf("move chain: rep=%s, want %s", f.Name(rep[f.DefOf[endPC]]), f.Name(f.DefOf[srcPC]))
	}
}

// TestCopyPropPhiCycle: a loop that only shuffles a value through moves and a
// phi collapses the phi onto the original value.
func TestCopyPropPhiCycle(t *testing.T) {
	var srcPC, usePC int
	_, m := buildMain(t, 0, func(_ *ir.Builder, bb *ir.BodyBuilder) {
		srcPC = bb.Const(0, 5) // x
		bb.Const(1, 0)         // i
		bb.Const(2, 3)         // n
		bb.Const(3, 1)         // one
		head := bb.PC()
		exit := bb.If(1, ir.Ge, 2, 0)
		bb.Move(4, 0) // t = x
		bb.Move(0, 4) // x = t (x is loop-carried but always the same value)
		bb.Bin(1, ir.Add, 1, 3)
		bb.Goto(head)
		bb.Patch(exit, bb.PC())
		usePC = bb.Native(-1, ir.NativePrint, 0)
		bb.ReturnVoid()
	})
	f := Build(m, nil)
	rep := CopyProp(f)
	xAtUse := f.Operands[usePC][0]
	if rep[xAtUse] != f.DefOf[srcPC] {
		t.Fatalf("phi-of-copies: rep=%s, want %s", f.Name(rep[xAtUse]), f.Name(f.DefOf[srcPC]))
	}
}

// TestValueNumbersRedundantAdd: two identical adds where the first dominates
// the second get one number; a non-dominating pair keeps separate numbers.
func TestValueNumbersRedundantAdd(t *testing.T) {
	var firstPC, secondPC int
	_, m := buildMain(t, 1, func(_ *ir.Builder, bb *ir.BodyBuilder) {
		bb.Const(1, 3)
		firstPC = bb.Bin(2, ir.Add, 0, 1)
		secondPC = bb.Bin(3, ir.Add, 1, 0) // commutative: same computation
		bb.Native(-1, ir.NativePrint, 2)
		bb.Native(-1, ir.NativePrint, 3)
		bb.ReturnVoid()
	})
	f := Build(m, nil)
	vn := ValueNumbers(f, nil)
	if vn[f.DefOf[secondPC]] != f.DefOf[firstPC] {
		t.Fatalf("commutative redundant add not numbered: %s vs %s",
			f.Name(vn[f.DefOf[secondPC]]), f.Name(f.DefOf[firstPC]))
	}
}

// TestValueNumbersScoping: computations in sibling branches must not share a
// number (neither dominates the other).
func TestValueNumbersScoping(t *testing.T) {
	var thenPC, elsePC int
	_, m := buildMain(t, 1, func(_ *ir.Builder, bb *ir.BodyBuilder) {
		bb.Const(1, 3)
		j := bb.If(0, ir.Gt, 1, 0)
		elsePC = bb.Bin(2, ir.Add, 0, 1)
		g := bb.Goto(0)
		bb.Patch(j, bb.PC())
		thenPC = bb.Bin(2, ir.Add, 0, 1)
		bb.Patch(g, bb.PC())
		bb.Native(-1, ir.NativePrint, 2)
		bb.ReturnVoid()
	})
	f := Build(m, nil)
	vn := ValueNumbers(f, nil)
	tv, ev := f.DefOf[thenPC], f.DefOf[elsePC]
	if vn[tv] == vn[ev] {
		t.Fatal("sibling-branch computations share a value number")
	}
	if vn[tv] != tv || vn[ev] != ev {
		t.Fatal("non-redundant computations should keep their own number")
	}
}

// TestValueNumbersImpureNotNumbered: loads and allocations never merge.
func TestValueNumbersImpureNotNumbered(t *testing.T) {
	var aPC, bPC int
	_, m := buildMain(t, 0, func(bd *ir.Builder, bb *ir.BodyBuilder) {
		cls := bd.Class("Box", nil)
		fld := bd.Field(cls, "v", ir.IntType)
		bb.New(0, cls)
		bb.Const(1, 1)
		bb.StoreField(0, fld, 1)
		aPC = bb.LoadField(2, 0, fld)
		bPC = bb.LoadField(3, 0, fld)
		bb.Native(-1, ir.NativePrint, 2)
		bb.Native(-1, ir.NativePrint, 3)
		bb.ReturnVoid()
	})
	f := Build(m, nil)
	vn := ValueNumbers(f, nil)
	if vn[f.DefOf[bPC]] == f.DefOf[aPC] {
		t.Fatal("heap loads must not be value-numbered (stores may intervene)")
	}
}
