package ir

import (
	"sort"
	"testing"
)

// buildDiamondMethod constructs the canonical diamond:
//
//	B0: v0 = 1; if v0 == v0 goto B2
//	B1: v1 = 10; goto B3
//	B2: v1 = 20
//	B3: v2 = v1; return
func buildDiamondMethod(t *testing.T) *Method {
	t.Helper()
	b := NewBuilder()
	cls := b.Class("Main", nil)
	m := b.Method(cls, "main", true, 0, nil)
	mb := b.Body(m)
	mb.Const(0, 1)
	ifpc := mb.If(0, Eq, 0, 0)
	mb.Const(1, 10)
	g := mb.Goto(0)
	elsePC := mb.PC()
	mb.Const(1, 20)
	join := mb.PC()
	mb.Move(2, 1)
	mb.ReturnVoid()
	mb.Patch(ifpc, elsePC)
	mb.Patch(g, join)
	if _, err := b.Seal("Main", "main"); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCFGDiamondStructure(t *testing.T) {
	m := buildDiamondMethod(t)
	cfg := NewCFG(m)
	if cfg.NumBlocks() != 4 {
		t.Fatalf("blocks = %d, want 4", cfg.NumBlocks())
	}

	// Blocks partition the body; BlockOf agrees with the ranges.
	covered := 0
	for i := range cfg.Blocks {
		blk := &cfg.Blocks[i]
		if blk.End <= blk.Start {
			t.Fatalf("block %d is empty: [%d,%d)", i, blk.Start, blk.End)
		}
		for pc := blk.Start; pc < blk.End; pc++ {
			if cfg.BlockOf[pc] != i {
				t.Errorf("BlockOf[%d] = %d, want %d", pc, cfg.BlockOf[pc], i)
			}
			covered++
		}
	}
	if covered != len(m.Code) {
		t.Errorf("blocks cover %d instructions, body has %d", covered, len(m.Code))
	}

	// Succ/pred mirroring.
	for i := range cfg.Blocks {
		for _, s := range cfg.Blocks[i].Succs {
			found := false
			for _, p := range cfg.Blocks[s].Preds {
				if p == i {
					found = true
				}
			}
			if !found {
				t.Errorf("edge %d->%d not mirrored in preds", i, s)
			}
		}
	}

	entry := cfg.BlockOf[0]
	succs := append([]int(nil), cfg.Blocks[entry].Succs...)
	sort.Ints(succs)
	if len(succs) != 2 {
		t.Fatalf("entry succs = %v, want both arms", succs)
	}
	join := cfg.BlockOf[5]
	if len(cfg.Blocks[join].Preds) != 2 {
		t.Errorf("join preds = %v, want both arms", cfg.Blocks[join].Preds)
	}

	// RPO: starts at the entry, includes all four blocks, and every
	// non-back-edge source precedes its target.
	if len(cfg.RPO) != 4 || cfg.RPO[0] != entry || cfg.RPOIndex(entry) != 0 {
		t.Errorf("RPO = %v", cfg.RPO)
	}
	if cfg.RPOIndex(join) != 3 {
		t.Errorf("join must be last in RPO, got index %d", cfg.RPOIndex(join))
	}
	for i := range cfg.Blocks {
		if !cfg.Reachable(i) {
			t.Errorf("block %d should be reachable", i)
		}
	}
}

func TestCFGUnreachableBlock(t *testing.T) {
	b := NewBuilder()
	cls := b.Class("Main", nil)
	m := b.Method(cls, "main", true, 0, nil)
	mb := b.Body(m)
	g := mb.Goto(0)
	mb.Const(0, 1) // skipped by the goto
	l := mb.PC()
	mb.ReturnVoid()
	mb.Patch(g, l)
	if _, err := b.Seal("Main", "main"); err != nil {
		t.Fatal(err)
	}
	cfg := NewCFG(m)
	dead := cfg.BlockOf[1]
	if cfg.Reachable(dead) {
		t.Error("skipped block must be unreachable")
	}
	if cfg.RPOIndex(dead) != -1 {
		t.Errorf("RPOIndex of unreachable block = %d, want -1", cfg.RPOIndex(dead))
	}
	if len(cfg.RPO) != 2 {
		t.Errorf("RPO = %v, want the two reachable blocks", cfg.RPO)
	}
}

func TestCFGFallsOff(t *testing.T) {
	// Built directly, not sealed: the validator rejects exactly this shape.
	b := NewBuilder()
	cls := b.Class("Main", nil)
	m := b.Method(cls, "main", true, 0, nil)
	b.Body(m).Const(0, 1)
	cfg := NewCFG(m)
	if cfg.NumBlocks() != 1 || !cfg.Blocks[0].FallsOff {
		t.Errorf("block must be marked FallsOff: %+v", cfg.Blocks)
	}
	if len(cfg.Blocks[0].Succs) != 0 {
		t.Errorf("falls-off block must have no successors")
	}
}

func TestCFGEmptyBody(t *testing.T) {
	b := NewBuilder()
	cls := b.Class("Main", nil)
	m := b.Method(cls, "main", true, 0, nil)
	cfg := NewCFG(m)
	if cfg.NumBlocks() != 0 || len(cfg.RPO) != 0 {
		t.Errorf("empty body must yield an empty CFG: %+v", cfg)
	}
}
