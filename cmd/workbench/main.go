// Command workbench lists, runs, and profiles the built-in DaCapo-alike
// workloads without writing any MJ by hand.
//
// Usage:
//
//	workbench -list
//	workbench -run chart -scale 4
//	workbench -profile eclipse -scale 2 -s 16 -top 10
//	workbench -slice eclipse -mode rta -objctx -top 10
//	workbench -audit eclipse -mode rta -top 10
//	workbench -vet bloat -engine ssa
//	workbench -ssa fop -m TreeGen.gen
//	workbench -dump bloat > bloat.mj
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"lowutil"
	"lowutil/internal/workloads"
)

func main() {
	list := flag.Bool("list", false, "list workloads and their bloat profiles")
	run := flag.String("run", "", "execute the named workload")
	profileName := flag.String("profile", "", "profile the named workload and print the report")
	sliceName := flag.String("slice", "", "print the named workload's static thin-slice report (no execution)")
	auditName := flag.String("audit", "", "print the named workload's static escape/lifetime audit (no execution)")
	vetName := flag.String("vet", "", "run the static vet suite on the named workload (no execution)")
	ssaName := flag.String("ssa", "", "dump the named workload's SSA form with SCCP and loop info")
	dump := flag.String("dump", "", "print the named workload's MJ source")
	scale := flag.Int("scale", 1, "workload scale factor")
	slots := flag.Int("s", lowutil.DefaultSlots, "context slots")
	top := flag.Int("top", lowutil.DefaultTop, "findings to print")
	mode := flag.String("mode", "rta", "slice call-graph construction: cha or rta")
	objctx := flag.Bool("objctx", false, "slice with one level of receiver-object context")
	engine := flag.String("engine", "ssa", "vet engine: ssa or dense")
	method := flag.String("m", "", "restrict -ssa to one method (Class.method)")
	legacy := flag.Bool("legacy", false, "profile on the reference engine (switch dispatch, map-backed Gcost)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the command to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken at exit to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("%v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatalf("%v", err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatalf("%v", err)
			}
			f.Close()
		}()
	}

	switch {
	case *list:
		for _, w := range workloads.All() {
			fmt.Printf("%-11s %s\n", w.Name, w.Profile)
		}
	case *dump != "":
		w := workloads.ByName(*dump)
		if w == nil {
			fatalf("unknown workload %q", *dump)
		}
		fmt.Print(w.Source(*scale))
	case *run != "":
		prog := compile(*run, *scale)
		res, err := prog.RunContext(context.Background())
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("output: %v\n", res.Output)
		fmt.Printf("steps=%d allocs=%d nativeWork=%d\n", res.Steps, res.Allocs, res.NativeWork)
	case *profileName != "":
		prog := compile(*profileName, *scale)
		opts := []lowutil.ProfileOption{lowutil.WithSlots(*slots)}
		if *legacy {
			opts = append(opts, lowutil.WithLegacyEngine())
		}
		profile, err := prog.ProfileContext(context.Background(), opts...)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(profile.Report(*top))
	case *sliceName != "":
		prog := compile(*sliceName, *scale)
		rep, err := prog.StaticSliceContext(context.Background(), staticOptions(*mode, *objctx, *top)...)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(rep)
	case *auditName != "":
		prog := compile(*auditName, *scale)
		rep, err := prog.StaticAudit(context.Background(), staticOptions(*mode, *objctx, *top)...)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(rep)
	case *vetName != "":
		prog := compile(*vetName, *scale)
		findings, err := prog.VetEngine(*engine)
		if err != nil {
			fatalf("%v", err)
		}
		if len(findings) == 0 {
			fmt.Println("no findings")
			return
		}
		for _, f := range findings {
			fmt.Println(f.Message)
		}
	case *ssaName != "":
		prog := compile(*ssaName, *scale)
		out, err := prog.SSADump(*method)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(out)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// staticOptions translates the shared -mode/-objctx/-top flags into the
// unified analysis options used by both -slice and -audit.
func staticOptions(mode string, objctx bool, top int) []lowutil.AnalysisOption {
	opts := []lowutil.AnalysisOption{lowutil.WithMode(mode), lowutil.WithTop(top)}
	if objctx {
		opts = append(opts, lowutil.WithObjCtx())
	}
	return opts
}

func compile(name string, scale int) *lowutil.Program {
	w := workloads.ByName(name)
	if w == nil {
		fatalf("unknown workload %q (try -list)", name)
	}
	prog, err := lowutil.Compile(w.Source(scale))
	if err != nil {
		fatalf("%v", err)
	}
	return prog
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "workbench: "+format+"\n", args...)
	os.Exit(1)
}
