package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"lowutil"
	"lowutil/internal/jobs"
)

// postRaw sends an arbitrary (possibly malformed) body, unlike postJSON
// which can only produce valid JSON.
func postRaw(t *testing.T, url, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, out
}

// TestErrorEnvelopeTable drives every externally reachable error path of
// the /v2 surface through one table: malformed JSON, unknown resources,
// invalid query parameters. Each row asserts the transport status plus the
// unified envelope's code and retryable bit, so a handler that starts
// leaking raw errors (or flipping retryability) fails here by name.
func TestErrorEnvelopeTable(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name      string
		method    string
		path      string
		body      string // POST body; empty means GET
		status    int
		code      string
		retryable bool
	}{
		{"bad json to jobs", "POST", "/v2/jobs", `{nope`, http.StatusBadRequest, "bad_request", false},
		{"truncated json to run", "POST", "/v2/run", `{"session":`, http.StatusBadRequest, "bad_request", false},
		{"empty batch", "POST", "/v2/jobs", `{"jobs":[]}`, http.StatusBadRequest, "bad_request", false},
		{"unknown job id", "GET", "/v2/jobs/jnope", "", http.StatusNotFound, "not_found", false},
		{"unknown batch events", "GET", "/v2/jobs/jnope/events", "", http.StatusNotFound, "not_found", false},
		{"negative after", "GET", "/v2/jobs/jnope/events?after=-1", "", http.StatusBadRequest, "bad_request", false},
		{"non-integer after", "GET", "/v2/jobs/jnope/events?after=abc", "", http.StatusBadRequest, "bad_request", false},
		{"unknown session run", "POST", "/v2/run", `{"session":"deadbeef"}`, http.StatusNotFound, "not_found", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var (
				code int
				hdr  http.Header
				body []byte
			)
			switch tc.method {
			case "GET":
				resp, err := http.Get(ts.URL + tc.path)
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				code, hdr = resp.StatusCode, resp.Header
				body, _ = io.ReadAll(resp.Body)
			default:
				code, hdr, body = postRaw(t, ts.URL+tc.path, tc.body)
			}
			if code != tc.status {
				t.Fatalf("status = %d, want %d; body %s", code, tc.status, body)
			}
			if ct := hdr.Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type = %q, want application/json", ct)
			}
			eb := decodeEnvelope(t, body)
			if eb.Code != tc.code || eb.Retryable != tc.retryable {
				t.Errorf("envelope = %+v, want code %q retryable %v", eb, tc.code, tc.retryable)
			}
		})
	}
}

// TestQueueFullRetryAfter pins the one error that carries a header
// contract: a 429 from a full job queue must tell clients when to come
// back, since the SDK's backoff honors Retry-After before its own jitter.
func TestQueueFullRetryAfter(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	_, ts := newTestServer(t, Config{
		Jobs: jobs.Config{
			Depth: 1, Shards: 1, Workers: 1,
			FaultHook: func(string, int) error { <-block; return errors.New("never") },
		},
	})
	postJSON(t, ts.URL+"/v2/jobs", jobsRequest{Key: "fill", Jobs: []jobSubmission{{Spec: jobs.Spec{Kind: jobs.KindRun, Source: workSrc}}}})
	code, hdr, body := postRaw(t, ts.URL+"/v2/jobs",
		`{"key":"over","jobs":[{"kind":"compile","source":"class Main { static void main() { print(1); } }"}]}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-depth submit: %d: %s", code, body)
	}
	if got := hdr.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want %q", got, "1")
	}
	if eb := decodeEnvelope(t, body); eb.Code != "at_capacity" || !eb.Retryable {
		t.Errorf("429 envelope = %+v, want retryable at_capacity", eb)
	}
}

// TestRunDeadlineEnvelope covers 504 on the synchronous execution path: a
// spin program under a tight per-request timeout surfaces as a deadline
// envelope, not a hung connection or a generic 500.
func TestRunDeadlineEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestTimeout: 100 * time.Millisecond})
	id := compileSession(t, ts.URL, spinSrc)
	code, body := postJSON(t, ts.URL+"/v2/run", vetRequest{Session: id})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("deadline run status = %d, want 504; body %s", code, body)
	}
	if eb := decodeEnvelope(t, body); eb.Code != "deadline" || eb.Retryable {
		t.Errorf("504 envelope = %+v, want non-retryable deadline", eb)
	}
}

// TestClassifyErrTable unit-tests the single error→(status, body) mapping,
// including branches unobservable over a real HTTP round trip: 499 is
// written after the client is gone, and 409 requires racing an identical
// batch key. Wrapping matters — the production errors arrive decorated
// with fmt.Errorf context, so every row wraps its sentinel.
func TestClassifyErrTable(t *testing.T) {
	_, compileErr := lowutil.Compile("class Main { static void main() { print(x); } }")
	var ce *lowutil.CompileError
	if !errors.As(compileErr, &ce) || ce.Line <= 0 {
		t.Fatalf("fixture compile error = %v, want positioned *CompileError", compileErr)
	}

	cases := []struct {
		name      string
		err       error
		status    int
		code      string
		retryable bool
	}{
		{"compile error", compileErr, http.StatusUnprocessableEntity, "compile_error", false},
		{"bad request", &badRequestError{errors.New("nope")}, http.StatusBadRequest, "bad_request", false},
		{"unknown session", fmt.Errorf("%w: s1", errUnknownSession), http.StatusNotFound, "not_found", false},
		{"unknown job", fmt.Errorf("%w: j1", errUnknownJob), http.StatusNotFound, "not_found", false},
		{"queue full", fmt.Errorf("submit: %w", jobs.ErrQueueFull), http.StatusTooManyRequests, "at_capacity", true},
		{"batch conflict", fmt.Errorf("submit: %w", jobs.ErrBatchConflict), http.StatusConflict, "conflict", false},
		{"deadline", fmt.Errorf("run: %w", context.DeadlineExceeded), http.StatusGatewayTimeout, "deadline", false},
		{"context canceled", fmt.Errorf("run: %w", context.Canceled), 499, "canceled", true},
		{"facade canceled", fmt.Errorf("%w: vm stopped", lowutil.ErrCanceled), 499, "canceled", true},
		// A run aborted by disconnect wraps cancellation inside a
		// ProfileError; the disconnect must win over the 500.
		{"canceled inside profile error",
			&lowutil.ProfileError{Stage: "run", Err: fmt.Errorf("%w: vm stopped", lowutil.ErrCanceled)},
			499, "canceled", true},
		{"profile error", &lowutil.ProfileError{Stage: "prune", Err: errors.New("boom")}, http.StatusInternalServerError, "profile_error", false},
		{"generic", errors.New("disk on fire"), http.StatusInternalServerError, "internal", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := classifyErr(tc.err)
			if status != tc.status || body.Code != tc.code || body.Retryable != tc.retryable {
				t.Errorf("classifyErr(%v) = (%d, %+v), want (%d, code %q, retryable %v)",
					tc.err, status, body, tc.status, tc.code, tc.retryable)
			}
			if body.Message == "" {
				t.Error("empty envelope message")
			}
		})
	}

	// The positioned fields survive into the envelope.
	if _, body := classifyErr(compileErr); body.Line != ce.Line || body.Col != ce.Col {
		t.Errorf("compile envelope position = %d:%d, want %d:%d", body.Line, body.Col, ce.Line, ce.Col)
	}
	if _, body := classifyErr(&lowutil.ProfileError{Stage: "analysis", Err: errors.New("x")}); body.Stage != "analysis" {
		t.Errorf("profile envelope stage = %q, want analysis", body.Stage)
	}
}
