package interp

import (
	"fmt"

	"lowutil/internal/ir"
)

// ErrKind classifies VM runtime errors.
type ErrKind uint8

const (
	// ErrNullDeref is a null-pointer dereference (the paper's
	// NullPointerException; the trigger for the null-propagation client).
	ErrNullDeref ErrKind = iota
	// ErrBounds is an array index out of bounds.
	ErrBounds
	// ErrDivZero is an integer division or remainder by zero.
	ErrDivZero
	// ErrStepLimit means the configured MaxSteps budget was exhausted.
	ErrStepLimit
	// ErrStackOverflow means the call depth limit was exceeded.
	ErrStackOverflow
	// ErrType is a dynamic type violation (e.g. field access on an int).
	ErrType
	// ErrCast is a failed checked operation on classes.
	ErrCast
	// ErrNative is a native-method failure.
	ErrNative
	// ErrCanceled means the Machine's context was canceled or timed out;
	// the VMError's Cause carries the context error.
	ErrCanceled
)

var errKindNames = [...]string{
	ErrNullDeref:     "null dereference",
	ErrBounds:        "index out of bounds",
	ErrDivZero:       "division by zero",
	ErrStepLimit:     "step limit exceeded",
	ErrStackOverflow: "stack overflow",
	ErrType:          "type violation",
	ErrCast:          "bad cast",
	ErrNative:        "native error",
	ErrCanceled:      "canceled",
}

func (k ErrKind) String() string {
	if int(k) < len(errKindNames) {
		return errKindNames[k]
	}
	return fmt.Sprintf("errkind(%d)", uint8(k))
}

// VMError is a runtime error raised during interpretation. It records the
// failing instruction and frame so diagnosis clients (e.g. null-propagation)
// can start their backward traversals from the failure point.
type VMError struct {
	Kind  ErrKind
	In    *ir.Instr
	Frame *Frame
	Msg   string
	// Cause is the underlying error, when one exists — for ErrCanceled it
	// is the machine context's error, so errors.Is(err, context.Canceled)
	// and errors.Is(err, context.DeadlineExceeded) see through the VMError.
	Cause error
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *VMError) Unwrap() error { return e.Cause }

func (e *VMError) Error() string {
	where := "?"
	if e.In != nil && e.In.Method != nil {
		where = fmt.Sprintf("%s pc %d (%s)", e.In.Method.QualifiedName(), e.In.PC, e.In)
	}
	if e.Msg != "" {
		return fmt.Sprintf("vm: %s at %s: %s", e.Kind, where, e.Msg)
	}
	return fmt.Sprintf("vm: %s at %s", e.Kind, where)
}
