// Package depgraph implements the abstract thin data dependence graph of the
// paper (Definition 2) and the traversals the cost-benefit analyses and
// client analyses run over it.
//
// A node is a static instruction annotated with an element d of a bounded
// abstract domain D; for the cost-benefit client, d is the encoded
// object-context slot h(c) ∈ [0, s). Other clients reuse the same graph
// structure with their own domains (null/not-null, typestate, copy origins),
// and the unabstracted baseline uses the occurrence index itself — which is
// exactly what makes it unbounded.
//
// Edges are stored in the def-use orientation used by the inference rules of
// Figure 4: an edge a → b ("a depends on b") means an instance of a read a
// location whose last writer was an instance of b. Both directions are kept
// so that cost (backward) and benefit (forward) traversals are linear.
//
// Two representations back the same API. The default dense representation
// interns nodes through a flat (instruction × domain-element) index with an
// arena for node records and append-only edge/location lists, so the online
// profiler does no map operations on its hot path. The original map-backed
// representation is kept behind NewLegacy as a differential reference.
package depgraph

import (
	"fmt"
	"sort"
	"unsafe"

	"lowutil/internal/ir"
)

// NoContext is the D value of consumer (predicate/native) nodes, which the
// paper leaves context-free.
const NoContext = -1

// ElemField is the pseudo field ID for array element locations (the paper's
// O.ELM).
const ElemField = -1

// defaultMaxD is the largest domain element covered by the dense direct
// index when the caller does not size the graph; it matches the facade's
// default context-slot count (d ∈ [NoContext, 15]).
const defaultMaxD = 15

// arenaChunk caps the node records allocated per arena chunk; chunks grow
// geometrically from arenaChunkMin so small graphs don't pay for a full
// chunk up front.
const (
	arenaChunkMin = 16
	arenaChunk    = 256
)

// EffectKind classifies a node's heap effect.
type EffectKind uint8

const (
	// EffNone: the node touches no heap location.
	EffNone EffectKind = iota
	// EffAlloc: the node allocates an object ("underlined", type U).
	EffAlloc
	// EffLoad: the node reads a heap location ("circled", type C).
	EffLoad
	// EffStore: the node writes a heap location ("boxed", type B).
	EffStore
)

func (e EffectKind) String() string {
	switch e {
	case EffAlloc:
		return "U"
	case EffLoad:
		return "C"
	case EffStore:
		return "B"
	default:
		return "-"
	}
}

// Loc identifies an abstract heap location O^d.f: the allocation node of the
// base object plus a field. Alloc == nil means a static field, with Field
// holding the static slot. Field == ElemField means the array-element
// pseudo-field.
type Loc struct {
	Alloc *Node
	Field int
}

func (l Loc) String() string {
	switch {
	case l.Alloc == nil:
		return fmt.Sprintf("static#%d", l.Field)
	case l.Field == ElemField:
		return l.Alloc.String() + ".ELM"
	default:
		return fmt.Sprintf("%s.f%d", l.Alloc, l.Field)
	}
}

// locRef is a node-side record of one abstract location the node accessed,
// with the graph's dense index for it. The per-node lists are almost always
// length one (a store instruction writes one abstract location per context),
// so a linear scan replaces the per-event map probe of the legacy layout.
type locRef struct {
	loc Loc
	li  int32
}

// Ref is a compact handle for a node within its graph: the intern ID plus
// one, with 0 standing for "no node". Shadow locations (frame slots, object
// fields, statics) store Refs instead of *Node so that the per-event shadow
// updates are scalar stores — a pointer store into the heap pays the GC
// hybrid write barrier whenever the collector is marking, a Ref store never
// does. Resolve with Graph.At.
type Ref int32

// NilRef is the Ref of "no node" (the zero value).
const NilRef Ref = 0

// Node is an abstract instruction instance: a static instruction annotated
// with an abstract-domain element.
type Node struct {
	In *ir.Instr
	// D is the abstract-domain element (context slot for Gcost).
	D int

	// g is the owning graph; frequencies and edge sets live in dense
	// id-indexed tables on the graph, not in the node record, so the
	// profiler's per-event updates touch hot flat arrays instead of
	// scattered records. Accessors resolve through g.
	g *Graph

	// Eff describes the node's heap effect; EffLoc is the location touched
	// (meaningful for EffLoad/EffStore; for EffAlloc, EffLoc.Alloc is the
	// node itself).
	Eff    EffectKind
	EffLoc Loc

	// id is the intern order of the node within its graph; edge-set hashing
	// and the frozen snapshot's dense permutation key off it.
	id int32

	// storeLocs/loadLocs record, in dense graphs, which locations this node
	// was registered as storing/loading (the inverse of the graph's
	// per-location lists, used for O(1) duplicate suppression).
	storeLocs []locRef
	loadLocs  []locRef
}

// Freq returns the number of concrete instruction instances mapped to this
// node. Storage is the graph's dense frequency table, which the profiler
// increments through its cached table view.
func (n *Node) Freq() int64 { return n.g.freq[n.id] }

// SetFreq overwrites the node's frequency (deserialization, tests).
func (n *Node) SetFreq(v int64) { n.g.freq[n.id] = v }

// IsConsumer reports whether the node is a predicate or native consumer.
func (n *Node) IsConsumer() bool { return n.In.IsConsumer() }

// IsPredicate reports whether the node is a predicate consumer.
func (n *Node) IsPredicate() bool { return n.In.IsPredicate() }

// ReadsHeap reports whether the node reads a static or object field or
// array element.
func (n *Node) ReadsHeap() bool { return n.Eff == EffLoad }

// WritesHeap reports whether the node writes one.
func (n *Node) WritesHeap() bool { return n.Eff == EffStore }

// NumDeps returns the backward (use→def) degree.
func (n *Node) NumDeps() int { return n.g.depSets[n.id].len() }

// NumUses returns the forward (def→use) degree.
func (n *Node) NumUses() int { return n.g.useSets[n.id].len() }

// Deps calls f for every node this node depends on.
func (n *Node) Deps(f func(*Node)) { n.g.depSets[n.id].each(n.g.all, f) }

// Uses calls f for every node that uses this node's values.
func (n *Node) Uses(f func(*Node)) { n.g.useSets[n.id].each(n.g.all, f) }

// RefEdges calls f for every reference edge out of this (store) node.
func (n *Node) RefEdges(f func(*Node)) { n.g.refSets[n.id].each(n.g.all, f) }

// Ref returns the node's compact handle for shadow storage.
func (n *Node) Ref() Ref { return Ref(n.id + 1) }

func (n *Node) String() string {
	if n.D == NoContext {
		return fmt.Sprintf("i%d°", n.In.ID)
	}
	return fmt.Sprintf("i%d^%d", n.In.ID, n.D)
}

type nodeKey struct {
	instr int
	d     int
}

// locEntry is the dense graph's per-location record: append-only store/load
// node-ID lists (deduplicated through the node-side locRef lists) and the
// points-to children set. accessed distinguishes locations that were ever
// loaded or stored from children-only entries, matching the legacy Locs
// semantics.
type locEntry struct {
	loc      Loc
	stores   []int32
	loads    []int32
	children nodeSet
	accessed bool
}

// Graph is a dependence graph under construction or analysis.
type Graph struct {
	Prog *ir.Program

	// legacy selects the map-backed reference representation.
	legacy bool
	// width is the dense direct-index row width: domain elements in
	// [-1, width-2] hit the flat index, everything else the overflow map.
	// Legacy graphs record it too so ApproxBytes models both identically.
	width int

	// all lists every node in intern order (both representations); a node's
	// id indexes this slice.
	all []*Node
	// freq holds node frequencies by intern id — a flat table so the
	// profiler's per-event increment is one dense array write rather than a
	// read-modify-write on a scattered node record.
	freq []int64
	// dep0 memoizes, by intern id, the first dep edge added to each node —
	// the one-word probe AddDepRefs checks before falling into the full
	// edge-set dedup. Loops re-add the same dep every iteration, and most
	// value instructions have exactly one dep, so this catches nearly all
	// re-adds with a single compare.
	dep0 []Ref
	// depSets/useSets/refSets hold the edge sets by intern id, keeping node
	// records read-mostly while profiling (better GC mark locality too).
	depSets []nodeSet
	useSets []nodeSet
	refSets []nodeSet
	// arena is the current node-record chunk; appending never reallocates
	// (chunks are replaced when full), so node pointers are stable.
	arena []Node

	// Dense intern index: idx[in.ID*width + d+1] holds intern id + 1, with 0
	// meaning absent. overflow catches domain elements outside the direct
	// range (the unabstracted baseline's occurrence indices, client
	// encodings).
	idx      []int32
	overflow map[nodeKey]*Node

	// Dense location tables.
	locEntries []locEntry
	locIDs     map[Loc]int32
	lastLoc    Loc   // one-entry intern cache: consecutive events
	lastLocID  int32 // usually touch the same abstract location
	haveLast   bool

	// Legacy representation.
	nodes       map[nodeKey]*Node
	ptChildren  map[Loc]map[*Node]struct{}
	locStores   map[Loc]map[*Node]struct{}
	locLoads    map[Loc]map[*Node]struct{}
	locsByOwner map[*Node]map[int]struct{}

	// edge counters (deduplicated)
	numDep int
	numRef int

	// frozen caches the CSR snapshot of the graph; any mutation through the
	// Graph API invalidates it. See Freeze.
	frozen *Snapshot
}

// New returns an empty dense graph over prog sized for the default context
// domain.
func New(prog *ir.Program) *Graph { return NewSized(prog, defaultMaxD, false) }

// NewLegacy returns an empty map-backed graph over prog — the differential
// reference for the dense representation.
func NewLegacy(prog *ir.Program) *Graph { return NewSized(prog, defaultMaxD, true) }

// NewSized returns an empty graph whose dense direct index covers domain
// elements d ∈ [NoContext, maxD]; elements outside the range fall back to an
// overflow map. legacy selects the map-backed representation (maxD then only
// parameterizes the ApproxBytes model, keeping reports identical across
// representations).
func NewSized(prog *ir.Program, maxD int, legacy bool) *Graph {
	if maxD < 0 {
		maxD = 0
	}
	g := &Graph{
		Prog:   prog,
		legacy: legacy,
		width:  maxD + 2,
	}
	if legacy {
		g.nodes = make(map[nodeKey]*Node)
		g.ptChildren = make(map[Loc]map[*Node]struct{})
		g.locStores = make(map[Loc]map[*Node]struct{})
		g.locLoads = make(map[Loc]map[*Node]struct{})
		g.locsByOwner = make(map[*Node]map[int]struct{})
		return g
	}
	g.idx = make([]int32, prog.NumInstrs()*g.width)
	g.overflow = make(map[nodeKey]*Node)
	g.locIDs = make(map[Loc]int32)
	return g
}

// Legacy reports whether the graph uses the map-backed reference
// representation.
func (g *Graph) Legacy() bool { return g.legacy }

// NumNodes returns the number of nodes (|V| of Table 1's #N column).
func (g *Graph) NumNodes() int { return len(g.all) }

// NumDepEdges returns the number of distinct def-use edges (#E).
func (g *Graph) NumDepEdges() int { return g.numDep }

// NumRefEdges returns the number of distinct reference edges.
func (g *Graph) NumRefEdges() int { return g.numRef }

// newNode appends a node record to the arena and registers it in the intern
// list. Chunked allocation keeps a profile run at O(nodes/arenaChunk)
// allocations instead of one per node.
func (g *Graph) newNode(in *ir.Instr, d int) *Node {
	if len(g.arena) == cap(g.arena) {
		c := cap(g.arena) * 2
		if c < arenaChunkMin {
			c = arenaChunkMin
		}
		if c > arenaChunk {
			c = arenaChunk
		}
		g.arena = make([]Node, 0, c)
	}
	g.arena = append(g.arena, Node{In: in, D: d, id: int32(len(g.all)), g: g})
	n := &g.arena[len(g.arena)-1]
	g.all = append(g.all, n)
	g.freq = append(g.freq, 0)
	g.dep0 = append(g.dep0, 0)
	g.depSets = append(g.depSets, nodeSet{})
	g.useSets = append(g.useSets, nodeSet{})
	g.refSets = append(g.refSets, nodeSet{})
	return n
}

// At resolves a shadow Ref to its node (nil for NilRef).
func (g *Graph) At(r Ref) *Node {
	if r == 0 {
		return nil
	}
	return g.all[r-1]
}

// Node returns the node for (in, d), creating it if needed. It does not
// touch Freq; call Touch for that.
func (g *Graph) Node(in *ir.Instr, d int) *Node {
	if g.legacy {
		k := nodeKey{in.ID, d}
		if n, ok := g.nodes[k]; ok {
			return n
		}
		n := g.newNode(in, d)
		g.nodes[k] = n
		g.Invalidate()
		return n
	}
	if dd := d + 1; uint(dd) < uint(g.width) {
		slot := &g.idx[in.ID*g.width+dd]
		if *slot != 0 {
			return g.all[*slot-1]
		}
		n := g.newNode(in, d)
		*slot = n.id + 1
		g.Invalidate()
		return n
	}
	k := nodeKey{in.ID, d}
	if n, ok := g.overflow[k]; ok {
		return n
	}
	n := g.newNode(in, d)
	g.overflow[k] = n
	g.Invalidate()
	return n
}

// Lookup returns the node for (in, d) or nil.
func (g *Graph) Lookup(in *ir.Instr, d int) *Node {
	if g.legacy {
		return g.nodes[nodeKey{in.ID, d}]
	}
	if dd := d + 1; uint(dd) < uint(g.width) {
		if slot := g.idx[in.ID*g.width+dd]; slot != 0 {
			return g.all[slot-1]
		}
		return nil
	}
	return g.overflow[nodeKey{in.ID, d}]
}

// Touch increments the node's frequency and returns it.
func (g *Graph) Touch(in *ir.Instr, d int) *Node {
	n := g.Node(in, d)
	g.freq[n.id]++
	g.Invalidate()
	return n
}

// TouchFast is Touch without the per-event snapshot invalidation: the hot
// profiling path calls it once per traced instruction and flushes the
// invalidation in batch at call boundaries via Invalidate. Callers must
// guarantee an Invalidate (or any mutating API call) happens before the next
// Freeze observes the updated frequencies. The body is the dense direct-index
// hit path, small enough to inline into the profiler's event switch; misses
// and legacy graphs take touchSlow.
func (g *Graph) TouchFast(in *ir.Instr, d int) *Node {
	if dd := d + 1; !g.legacy && uint(dd) < uint(g.width) {
		if v := g.idx[in.ID*g.width+dd]; v != 0 {
			g.freq[v-1]++
			return g.all[v-1]
		}
	}
	return g.touchSlow(in, d)
}

// touchSlow is the intern-miss path of TouchFast.
func (g *Graph) touchSlow(in *ir.Instr, d int) *Node {
	n := g.Node(in, d)
	g.freq[n.id]++
	return n
}

// DenseTables is a caller-cached view of the dense intern index and
// frequency table, letting the profiler's event loop run the intern hit path
// (one index probe, one frequency increment) fully inlined without a call
// into the graph. Idx[in.ID*Width + d+1] holds intern id + 1 (0 = absent) —
// the same encoding as Ref — and Freq is indexed by intern id. Idx never
// reallocates; Freq grows on intern, so the view must be re-fetched after
// any miss. Empty for legacy graphs.
type DenseTables struct {
	Idx   []int32
	Freq  []int64
	Width int
}

// DenseTables returns the current dense-table view (see type doc).
func (g *Graph) DenseTables() DenseTables {
	if g.legacy {
		return DenseTables{}
	}
	return DenseTables{Idx: g.idx, Freq: g.freq, Width: g.width}
}

// Invalidate drops the cached frozen snapshot so the next Freeze rebuilds
// it. Mutating API calls do this implicitly; TouchFast batches it. The guard
// matters on the hot path: the snapshot is usually already nil while
// profiling, and an unconditional pointer store would pay the GC write
// barrier on every dependence edge and call boundary.
func (g *Graph) Invalidate() {
	if g.frozen != nil {
		g.frozen = nil
	}
}

// AddDep records that 'from' used a value defined by 'to'. Self-loops
// (an instruction instance reading its own previous output) are kept: they
// occur naturally for accumulators under abstraction.
func (g *Graph) AddDep(from, to *Node) {
	if from == nil || to == nil {
		return
	}
	if !g.depSets[from.id].add(to.id) {
		return
	}
	g.useSets[to.id].add(from.id)
	g.numDep++
	g.Invalidate()
}

// AddDepRef is AddDep with the dependency given as a shadow Ref — the form
// the profiler's shadow locations store. Equivalent to
// AddDep(from, g.At(r)); the Ref form avoids materializing the node pointer
// on the hot path.
func (g *Graph) AddDepRef(from *Node, r Ref) {
	if from == nil || r == 0 {
		return
	}
	to := int32(r - 1)
	if !g.depSets[from.id].add(to) {
		return
	}
	g.useSets[to].add(from.id)
	g.numDep++
	g.Invalidate()
}

// AddDepRefs is AddDep with both endpoints given as Refs — the profiler's
// fast path, which works in Refs and never materializes node pointers for
// value-producing events. from must be a valid Ref (obtained from Touch or
// Node); to may be NilRef. Inside a loop the same dep edge is re-added every
// iteration, so the duplicate check is the hot case: the dep0 memo (the
// node's first dep edge, kept in a parallel array) catches it for single-dep
// instrs and is small enough to inline into the tracer's event switch;
// everything else (later members, genuinely new edges, NilRef) takes the
// addDepRefsSlow call.
func (g *Graph) AddDepRefs(from, to Ref) {
	if g.dep0[from-1] == to {
		return
	}
	g.addDepRefsSlow(from, to)
}

// addDepRefsSlow records a dep edge that missed the inline dup0 probe.
func (g *Graph) addDepRefsSlow(from, to Ref) {
	if to == 0 {
		return
	}
	f := int32(from - 1)
	added := g.depSets[f].add(int32(to - 1))
	if g.dep0[f] == 0 {
		g.dep0[f] = to
	}
	if !added {
		return
	}
	g.useSets[to-1].add(f)
	g.numDep++
	g.Invalidate()
}

// AddRef records a reference edge from a field-store node to the allocation
// node of the base object.
func (g *Graph) AddRef(store, alloc *Node) {
	if store == nil || alloc == nil {
		return
	}
	if !g.refSets[store.id].add(alloc.id) {
		return
	}
	g.numRef++
	g.Invalidate()
}

// AddRefs is AddRef over Refs, for callers already holding intern IDs.
func (g *Graph) AddRefs(store, alloc Ref) {
	if store == 0 || alloc == 0 {
		return
	}
	if !g.refSets[store-1].add(int32(alloc - 1)) {
		return
	}
	g.numRef++
	g.Invalidate()
}

// locIndex interns loc into the dense location table. The one-entry cache
// makes the common store-then-child event pair (same location twice in a
// row) bypass the map.
func (g *Graph) locIndex(loc Loc) int32 {
	if g.haveLast && loc == g.lastLoc {
		return g.lastLocID
	}
	li, ok := g.locIDs[loc]
	if !ok {
		li = int32(len(g.locEntries))
		g.locEntries = append(g.locEntries, locEntry{loc: loc})
		g.locIDs[loc] = li
	}
	g.lastLoc, g.lastLocID, g.haveLast = loc, li, true
	return li
}

// AddLocStore records that node n wrote abstract location loc.
func (g *Graph) AddLocStore(loc Loc, n *Node) {
	if g.legacy {
		addToLocSet(g.locStores, loc, n)
		g.indexLoc(loc)
		g.Invalidate()
		return
	}
	for i := range n.storeLocs {
		if n.storeLocs[i].loc == loc {
			return
		}
	}
	li := g.locIndex(loc)
	n.storeLocs = append(n.storeLocs, locRef{loc, li})
	e := &g.locEntries[li]
	e.stores = append(e.stores, n.id)
	e.accessed = true
	g.Invalidate()
}

// AddLocLoad records that node n read abstract location loc.
func (g *Graph) AddLocLoad(loc Loc, n *Node) {
	if g.legacy {
		addToLocSet(g.locLoads, loc, n)
		g.indexLoc(loc)
		g.Invalidate()
		return
	}
	for i := range n.loadLocs {
		if n.loadLocs[i].loc == loc {
			return
		}
	}
	li := g.locIndex(loc)
	n.loadLocs = append(n.loadLocs, locRef{loc, li})
	e := &g.locEntries[li]
	e.loads = append(e.loads, n.id)
	e.accessed = true
	g.Invalidate()
}

func addToLocSet(m map[Loc]map[*Node]struct{}, loc Loc, n *Node) {
	set := m[loc]
	if set == nil {
		set = make(map[*Node]struct{}, 2)
		m[loc] = set
	}
	set[n] = struct{}{}
}

func (g *Graph) indexLoc(loc Loc) {
	if loc.Alloc == nil {
		return
	}
	fields := g.locsByOwner[loc.Alloc]
	if fields == nil {
		fields = make(map[int]struct{}, 4)
		g.locsByOwner[loc.Alloc] = fields
	}
	fields[loc.Field] = struct{}{}
}

// nodeLess is the canonical node order: (instruction ID, context slot). The
// frozen snapshot assigns dense IDs in this order, so sorted-by-ID and
// sorted-by-nodeLess iterations agree.
func nodeLess(a, b *Node) bool {
	if a.In.ID != b.In.ID {
		return a.In.ID < b.In.ID
	}
	return a.D < b.D
}

// sortedSetNodes flattens a node set into a slice sorted by nodeLess.
func sortedSetNodes(set map[*Node]struct{}) []*Node {
	out := make([]*Node, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return nodeLess(out[i], out[j]) })
	return out
}

// sortedIDNodes maps intern IDs to nodes sorted by nodeLess.
func (g *Graph) sortedIDNodes(ids []int32) []*Node {
	out := make([]*Node, len(ids))
	for i, id := range ids {
		out[i] = g.all[id]
	}
	sort.Slice(out, func(i, j int) bool { return nodeLess(out[i], out[j]) })
	return out
}

// locLess orders abstract locations: statics first (by field), then by the
// owning allocation node (nodeLess) and field.
func locLess(a, b Loc) bool {
	switch {
	case a.Alloc == nil && b.Alloc == nil:
		return a.Field < b.Field
	case a.Alloc == nil:
		return true
	case b.Alloc == nil:
		return false
	case a.Alloc != b.Alloc:
		return nodeLess(a.Alloc, b.Alloc)
	default:
		return a.Field < b.Field
	}
}

// StoresOf calls f for every store node recorded for loc, in canonical node
// order.
func (g *Graph) StoresOf(loc Loc, f func(*Node)) {
	if s := g.frozen; s != nil {
		s.storesOf(loc, f)
		return
	}
	if g.legacy {
		for _, n := range sortedSetNodes(g.locStores[loc]) {
			f(n)
		}
		return
	}
	if li, ok := g.locIDs[loc]; ok {
		for _, n := range g.sortedIDNodes(g.locEntries[li].stores) {
			f(n)
		}
	}
}

// LoadsOf calls f for every load node recorded for loc, in canonical node
// order.
func (g *Graph) LoadsOf(loc Loc, f func(*Node)) {
	if s := g.frozen; s != nil {
		s.loadsOf(loc, f)
		return
	}
	if g.legacy {
		for _, n := range sortedSetNodes(g.locLoads[loc]) {
			f(n)
		}
		return
	}
	if li, ok := g.locIDs[loc]; ok {
		for _, n := range g.sortedIDNodes(g.locEntries[li].loads) {
			f(n)
		}
	}
}

// FieldsOf calls f for every field (including ElemField) of objects
// allocated at owner that was ever loaded or stored, in ascending field
// order.
func (g *Graph) FieldsOf(owner *Node, f func(field int)) {
	if s := g.frozen; s != nil {
		s.fieldsOf(owner, f)
		return
	}
	var fields []int
	if g.legacy {
		set := g.locsByOwner[owner]
		fields = make([]int, 0, len(set))
		for field := range set {
			fields = append(fields, field)
		}
	} else {
		for i := range g.locEntries {
			e := &g.locEntries[i]
			if e.accessed && e.loc.Alloc == owner {
				fields = append(fields, e.loc.Field)
			}
		}
	}
	sort.Ints(fields)
	for _, field := range fields {
		f(field)
	}
}

// Locs calls f for every abstract location that was ever loaded or stored,
// in locLess order.
func (g *Graph) Locs(f func(Loc)) {
	if s := g.frozen; s != nil {
		for _, loc := range s.Locs {
			f(loc)
		}
		return
	}
	var locs []Loc
	if g.legacy {
		seen := make(map[Loc]struct{}, len(g.locStores)+len(g.locLoads))
		locs = make([]Loc, 0, len(seen))
		for loc := range g.locStores {
			seen[loc] = struct{}{}
			locs = append(locs, loc)
		}
		for loc := range g.locLoads {
			if _, dup := seen[loc]; !dup {
				locs = append(locs, loc)
			}
		}
	} else {
		for i := range g.locEntries {
			if g.locEntries[i].accessed {
				locs = append(locs, g.locEntries[i].loc)
			}
		}
	}
	sort.Slice(locs, func(i, j int) bool { return locLess(locs[i], locs[j]) })
	for _, loc := range locs {
		f(loc)
	}
}

// AddChild records that location loc held a reference to an object allocated
// at child (a points-to edge used to build object reference trees).
func (g *Graph) AddChild(loc Loc, child *Node) {
	if child == nil {
		return
	}
	if g.legacy {
		set := g.ptChildren[loc]
		if set == nil {
			set = make(map[*Node]struct{}, 2)
			g.ptChildren[loc] = set
		}
		set[child] = struct{}{}
		g.Invalidate()
		return
	}
	li := g.locIndex(loc)
	g.locEntries[li].children.add(child.id)
	g.Invalidate()
}

// Children calls f for every (field, child allocation node) pair recorded
// for objects allocated at owner, ordered by (field, child).
func (g *Graph) Children(owner *Node, f func(field int, child *Node)) {
	if s := g.frozen; s != nil {
		s.childrenOf(owner, f)
		return
	}
	type pair struct {
		field int
		child *Node
	}
	var pairs []pair
	if g.legacy {
		for loc, set := range g.ptChildren {
			if loc.Alloc != owner {
				continue
			}
			for c := range set {
				pairs = append(pairs, pair{loc.Field, c})
			}
		}
	} else {
		for i := range g.locEntries {
			e := &g.locEntries[i]
			if e.loc.Alloc != owner {
				continue
			}
			e.children.each(g.all, func(c *Node) {
				pairs = append(pairs, pair{e.loc.Field, c})
			})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].field != pairs[j].field {
			return pairs[i].field < pairs[j].field
		}
		return nodeLess(pairs[i].child, pairs[j].child)
	})
	for _, p := range pairs {
		f(p.field, p.child)
	}
}

// Nodes calls f for every node in the graph, ordered by (instruction ID,
// context slot). Deterministic order matters: callers fold node metrics into
// floating-point sums, and float addition is not associative.
func (g *Graph) Nodes(f func(*Node)) {
	if s := g.frozen; s != nil {
		for _, n := range s.Nodes {
			f(n)
		}
		return
	}
	sorted := make([]*Node, len(g.all))
	copy(sorted, g.all)
	sort.Slice(sorted, func(i, j int) bool { return nodeLess(sorted[i], sorted[j]) })
	for _, n := range sorted {
		f(n)
	}
}

// NodesOf returns all nodes of a given static instruction, ordered by
// context slot.
func (g *Graph) NodesOf(in *ir.Instr) []*Node {
	var out []*Node
	for _, n := range g.all {
		if n.In.ID == in.ID {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].D < out[j].D })
	return out
}

// TotalFreq sums node frequencies — the number of concrete instruction
// instances that created dependence-graph activity.
func (g *Graph) TotalFreq() int64 {
	var t int64
	for _, f := range g.freq {
		t += f
	}
	return t
}

// ApproxBytes estimates the memory footprint of the graph in bytes, the
// analogue of Table 1's M(Mb) column. The model follows the dense layout —
// arena node records, the flat intern index, append-only edge and location
// lists with their dedup-table slack — and is computed from representation-
// independent counts, so legacy and dense graphs over the same profile
// report the same figure (reports stay byte-identical across engines).
func (g *Graph) ApproxBytes() int64 {
	var (
		nodeBytes = int64(unsafe.Sizeof(Node{}))
		setBytes  = int64(unsafe.Sizeof(nodeSet{}))
		locBytes  = int64(unsafe.Sizeof(locEntry{}))
		locRefSz  = int64(unsafe.Sizeof(locRef{}))
	)
	const (
		listEntry  = 4 // one int32 edge-list slot
		tableSlack = 4 // amortized dedup-table share per spilled entry
		mapEntry   = 48
		ptrEntry   = 8
	)

	nLocs, nStores, nLoads, nChildren, nOverflow := g.locStats()

	// Per node: the arena record plus its slots in the parallel tables —
	// the intern-list pointer, the frequency word, the dep0 memo, and the
	// three edge-set headers. The parallel tables are append-grown by
	// doubling, so their live capacity (and the bytes a build actually
	// allocates) runs up to 2× the entry count; the factor charges that
	// slack. Arena chunks are replaced, not copied, so node records are
	// charged at size.
	perNode := nodeBytes + 2*(ptrEntry+8+4+3*setBytes)
	b := int64(len(g.all)) * perNode
	b += int64(g.Prog.NumInstrs()*g.width) * 4 // flat intern index
	b += int64(nOverflow) * mapEntry
	b += int64(g.numDep) * 2 * (listEntry + tableSlack) // both directions
	b += int64(g.numRef) * (listEntry + tableSlack)
	b += int64(nLocs) * locBytes
	// Store/load registrations appear twice: an int32 in the per-location
	// list and a locRef in the node-side dedup list.
	b += int64(nStores+nLoads) * (4 + locRefSz)
	b += int64(nChildren) * (listEntry + tableSlack)
	return b
}

// locStats counts location-table entries identically for both
// representations.
func (g *Graph) locStats() (nLocs, nStores, nLoads, nChildren, nOverflow int) {
	if g.legacy {
		seen := make(map[Loc]struct{}, len(g.locStores)+len(g.locLoads)+len(g.ptChildren))
		for loc, set := range g.locStores {
			seen[loc] = struct{}{}
			nStores += len(set)
		}
		for loc, set := range g.locLoads {
			seen[loc] = struct{}{}
			nLoads += len(set)
		}
		for loc, set := range g.ptChildren {
			seen[loc] = struct{}{}
			nChildren += len(set)
		}
		nLocs = len(seen)
		for _, n := range g.all {
			if dd := n.D + 1; uint(dd) >= uint(g.width) {
				nOverflow++
			}
		}
		return
	}
	nLocs = len(g.locEntries)
	for i := range g.locEntries {
		e := &g.locEntries[i]
		nStores += len(e.stores)
		nLoads += len(e.loads)
		nChildren += e.children.len()
	}
	nOverflow = len(g.overflow)
	return
}
