package depgraph

// Freeze compacts a finished Gcost into an immutable compressed-sparse-row
// (CSR) snapshot: dense int32 node IDs assigned in canonical (instruction,
// context) order, flat adjacency arrays for dep/use/ref edges, parallel
// arrays for frequency/effect/context, and CSR-indexed location tables
// (stores, loads, fields-per-owner, points-to children). Analyses that
// repeatedly walk the graph — the cost-benefit DP, deadness, ranking — run
// over the snapshot instead of chasing per-node map entries.
//
// Snapshotting routes off the graph's intern list and per-location lists: a
// permutation array maps intern IDs to canonical dense IDs, so no per-node
// map is built. The snapshot is a pure read-model: it is valid as long as
// the graph is not mutated through the Graph API (any such mutation
// invalidates the cached snapshot, and the next Freeze rebuilds it).
// Mutating Node fields directly — something only tests do — does not
// invalidate it; re-Freeze manually in that case.

import (
	"sort"
	"sync"
)

// Snapshot is the frozen CSR form of a Graph. All adjacency rows are sorted
// by dense node ID, so every iteration over the snapshot is deterministic.
type Snapshot struct {
	G *Graph

	// Nodes maps dense ID → node, sorted by (instruction ID, context slot).
	Nodes []*Node

	// Per-node parallel arrays, indexed by dense ID.
	Freq      []int64
	D         []int32
	Eff       []EffectKind
	Consumer  []bool
	Predicate []bool

	// Dep/Use/Ref adjacency in CSR form: the targets of node i are
	// Dep[DepStart[i]:DepStart[i+1]] etc., each row sorted ascending.
	DepStart []int32
	Dep      []int32
	UseStart []int32
	Use      []int32
	RefStart []int32
	Ref      []int32

	// Locs lists every abstract location ever loaded or stored, in locLess
	// order (statics first). Store/Load hold the store/load node IDs of
	// location j in Store[StoreStart[j]:StoreStart[j+1]] etc.
	Locs       []Loc
	StoreStart []int32
	Store      []int32
	LoadStart  []int32
	Load       []int32

	// OwnerField/OwnerLoc list, per owning allocation node, the fields ever
	// accessed on its objects and the corresponding Locs indices.
	OwnerFieldStart []int32
	OwnerField      []int32
	OwnerLoc        []int32

	// ChildField/Child list, per owning allocation node, the points-to
	// children pairs (field, child allocation node ID).
	ChildStart []int32
	ChildField []int32
	Child      []int32

	// perm maps intern ID → dense ID for every node of the source graph.
	perm  []int32
	locID map[Loc]int32

	memoMu sync.Mutex
	memo   map[any]any
}

// Memo returns the value cached under key, building it on first use. The
// snapshot is immutable, so derived results (condensations, DP arrays,
// per-location aggregates) are valid for its whole lifetime; clients key
// them here instead of recomputing per analysis. build runs under the memo
// lock and must not call Memo on the same snapshot.
func (s *Snapshot) Memo(key any, build func() any) any {
	s.memoMu.Lock()
	defer s.memoMu.Unlock()
	if v, ok := s.memo[key]; ok {
		return v
	}
	v := build()
	if s.memo == nil {
		s.memo = make(map[any]any)
	}
	s.memo[key] = v
	return v
}

// Freeze returns the cached CSR snapshot of the graph, building it if the
// graph changed since the last call.
func (g *Graph) Freeze() *Snapshot {
	if g.frozen != nil {
		return g.frozen
	}
	n := len(g.all)
	s := &Snapshot{G: g}

	s.Nodes = make([]*Node, n)
	copy(s.Nodes, g.all)
	sort.Slice(s.Nodes, func(i, j int) bool { return nodeLess(s.Nodes[i], s.Nodes[j]) })
	s.perm = make([]int32, n)
	for i, nd := range s.Nodes {
		s.perm[nd.id] = int32(i)
	}

	s.Freq = make([]int64, n)
	s.D = make([]int32, n)
	s.Eff = make([]EffectKind, n)
	s.Consumer = make([]bool, n)
	s.Predicate = make([]bool, n)
	for i, nd := range s.Nodes {
		s.Freq[i] = nd.Freq()
		s.D[i] = int32(nd.D)
		s.Eff[i] = nd.Eff
		s.Consumer[i] = nd.IsConsumer()
		s.Predicate[i] = nd.IsPredicate()
	}

	s.DepStart, s.Dep = s.buildAdj(func(nd *Node) *nodeSet { return &g.depSets[nd.id] })
	s.UseStart, s.Use = s.buildAdj(func(nd *Node) *nodeSet { return &g.useSets[nd.id] })
	s.RefStart, s.Ref = s.buildAdj(func(nd *Node) *nodeSet { return &g.refSets[nd.id] })
	s.buildLocs()
	s.buildChildren()

	g.frozen = s
	return s
}

// buildAdj flattens one edge family into CSR with sorted rows.
func (s *Snapshot) buildAdj(setOf func(*Node) *nodeSet) (start, data []int32) {
	n := len(s.Nodes)
	start = make([]int32, n+1)
	for i, nd := range s.Nodes {
		start[i+1] = start[i] + int32(setOf(nd).len())
	}
	data = make([]int32, start[n])
	cursor := make([]int32, n)
	copy(cursor, start[:n])
	for i, nd := range s.Nodes {
		setOf(nd).each(s.G.all, func(t *Node) {
			data[cursor[i]] = s.perm[t.id]
			cursor[i]++
		})
	}
	for i := 0; i < n; i++ {
		row := data[start[i]:start[i+1]]
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
	}
	return start, data
}

// buildLocs constructs the location table and the store/load and
// fields-per-owner CSR indexes. Only locations that were ever loaded or
// stored appear (children-only entries are points-to structure, not heap
// accesses).
func (s *Snapshot) buildLocs() {
	g := s.G
	if g.legacy {
		seen := make(map[Loc]struct{}, len(g.locStores)+len(g.locLoads))
		for loc := range g.locStores {
			seen[loc] = struct{}{}
		}
		for loc := range g.locLoads {
			seen[loc] = struct{}{}
		}
		s.Locs = make([]Loc, 0, len(seen))
		for loc := range seen {
			s.Locs = append(s.Locs, loc)
		}
	} else {
		for i := range g.locEntries {
			if g.locEntries[i].accessed {
				s.Locs = append(s.Locs, g.locEntries[i].loc)
			}
		}
	}
	sort.Slice(s.Locs, func(i, j int) bool { return locLess(s.Locs[i], s.Locs[j]) })
	s.locID = make(map[Loc]int32, len(s.Locs))
	for i, loc := range s.Locs {
		s.locID[loc] = int32(i)
	}

	if g.legacy {
		s.StoreStart, s.Store = s.buildLocCSRMap(g.locStores)
		s.LoadStart, s.Load = s.buildLocCSRMap(g.locLoads)
	} else {
		s.StoreStart, s.Store = s.buildLocCSRList(func(e *locEntry) []int32 { return e.stores })
		s.LoadStart, s.Load = s.buildLocCSRList(func(e *locEntry) []int32 { return e.loads })
	}

	// Locs is sorted by owner, so each owner's fields form a contiguous run.
	n := len(s.Nodes)
	s.OwnerFieldStart = make([]int32, n+1)
	for _, loc := range s.Locs {
		if loc.Alloc != nil {
			s.OwnerFieldStart[s.perm[loc.Alloc.id]+1]++
		}
	}
	for i := 0; i < n; i++ {
		s.OwnerFieldStart[i+1] += s.OwnerFieldStart[i]
	}
	s.OwnerField = make([]int32, s.OwnerFieldStart[n])
	s.OwnerLoc = make([]int32, s.OwnerFieldStart[n])
	cursor := make([]int32, n)
	copy(cursor, s.OwnerFieldStart[:n])
	for li, loc := range s.Locs {
		if loc.Alloc == nil {
			continue
		}
		oi := s.perm[loc.Alloc.id]
		s.OwnerField[cursor[oi]] = int32(loc.Field)
		s.OwnerLoc[cursor[oi]] = int32(li)
		cursor[oi]++
	}
}

func (s *Snapshot) buildLocCSRMap(m map[Loc]map[*Node]struct{}) (start, data []int32) {
	nl := len(s.Locs)
	start = make([]int32, nl+1)
	for li, loc := range s.Locs {
		start[li+1] = start[li] + int32(len(m[loc]))
	}
	data = make([]int32, start[nl])
	for li, loc := range s.Locs {
		i := start[li]
		for n := range m[loc] {
			data[i] = s.perm[n.id]
			i++
		}
		row := data[start[li]:start[li+1]]
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
	}
	return start, data
}

func (s *Snapshot) buildLocCSRList(rowOf func(*locEntry) []int32) (start, data []int32) {
	g := s.G
	nl := len(s.Locs)
	start = make([]int32, nl+1)
	for li, loc := range s.Locs {
		e := &g.locEntries[g.locIDs[loc]]
		start[li+1] = start[li] + int32(len(rowOf(e)))
	}
	data = make([]int32, start[nl])
	for li, loc := range s.Locs {
		e := &g.locEntries[g.locIDs[loc]]
		i := start[li]
		for _, id := range rowOf(e) {
			data[i] = s.perm[id]
			i++
		}
		row := data[start[li]:start[li+1]]
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
	}
	return start, data
}

// buildChildren constructs the per-owner points-to child CSR.
func (s *Snapshot) buildChildren() {
	g := s.G
	type pair struct{ owner, field, child int32 }
	var pairs []pair
	if g.legacy {
		for loc, set := range g.ptChildren {
			if loc.Alloc == nil {
				// Statics hold references too, but the reference tree of
				// Definition 7 is rooted at allocation nodes; static-held
				// children are not reachable through an owner scan, matching
				// the map-based Children helper.
				continue
			}
			oi := s.perm[loc.Alloc.id]
			for c := range set {
				pairs = append(pairs, pair{oi, int32(loc.Field), s.perm[c.id]})
			}
		}
	} else {
		for i := range g.locEntries {
			e := &g.locEntries[i]
			if e.loc.Alloc == nil || e.children.len() == 0 {
				continue
			}
			oi := s.perm[e.loc.Alloc.id]
			e.children.each(g.all, func(c *Node) {
				pairs = append(pairs, pair{oi, int32(e.loc.Field), s.perm[c.id]})
			})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].owner != pairs[j].owner {
			return pairs[i].owner < pairs[j].owner
		}
		if pairs[i].field != pairs[j].field {
			return pairs[i].field < pairs[j].field
		}
		return pairs[i].child < pairs[j].child
	})
	n := len(s.Nodes)
	s.ChildStart = make([]int32, n+1)
	s.ChildField = make([]int32, len(pairs))
	s.Child = make([]int32, len(pairs))
	for i, p := range pairs {
		s.ChildStart[p.owner+1]++
		s.ChildField[i] = p.field
		s.Child[i] = p.child
	}
	for i := 0; i < n; i++ {
		s.ChildStart[i+1] += s.ChildStart[i]
	}
}

// NumNodes returns the node count.
func (s *Snapshot) NumNodes() int { return len(s.Nodes) }

// ID returns the dense ID of n and whether n belongs to the snapshot.
func (s *Snapshot) ID(n *Node) (int32, bool) {
	if n == nil || int(n.id) >= len(s.perm) {
		return 0, false
	}
	id := s.perm[n.id]
	if s.Nodes[id] != n {
		return 0, false
	}
	return id, true
}

// LocID returns the dense index of loc in Locs and whether it exists.
func (s *Snapshot) LocID(loc Loc) (int32, bool) {
	id, ok := s.locID[loc]
	return id, ok
}

// storesOf/loadsOf/fieldsOf/childrenOf back the Graph iteration helpers
// when the graph is frozen; rows are pre-sorted so iteration is both
// deterministic and allocation-free.

func (s *Snapshot) storesOf(loc Loc, f func(*Node)) {
	li, ok := s.locID[loc]
	if !ok {
		return
	}
	for _, id := range s.Store[s.StoreStart[li]:s.StoreStart[li+1]] {
		f(s.Nodes[id])
	}
}

func (s *Snapshot) loadsOf(loc Loc, f func(*Node)) {
	li, ok := s.locID[loc]
	if !ok {
		return
	}
	for _, id := range s.Load[s.LoadStart[li]:s.LoadStart[li+1]] {
		f(s.Nodes[id])
	}
}

func (s *Snapshot) fieldsOf(owner *Node, f func(field int)) {
	oi, ok := s.ID(owner)
	if !ok {
		return
	}
	for _, field := range s.OwnerField[s.OwnerFieldStart[oi]:s.OwnerFieldStart[oi+1]] {
		f(int(field))
	}
}

func (s *Snapshot) childrenOf(owner *Node, f func(field int, child *Node)) {
	oi, ok := s.ID(owner)
	if !ok {
		return
	}
	for k := s.ChildStart[oi]; k < s.ChildStart[oi+1]; k++ {
		f(int(s.ChildField[k]), s.Nodes[s.Child[k]])
	}
}
