package ir

import (
	"strings"
	"testing"
)

// TestInstrStringsCoverAllOpcodes pins the disassembly form of every opcode.
func TestInstrStringsCoverAllOpcodes(t *testing.T) {
	b := NewBuilder()
	cls := b.Class("C", nil)
	f := b.Field(cls, "fld", IntType)
	sf := b.StaticField(cls, "sfld", IntType)
	callee := b.Method(cls, "callee", true, 1, IntType)
	cb := b.Body(callee)
	cb.Return(0)

	m := b.Method(cls, "main", true, 0, IntType)
	mb := b.Body(m)
	mb.Const(0, 7)
	mb.Null(1)
	mb.Move(2, 0)
	mb.Bin(3, Add, 0, 2)
	mb.Neg(3, 0)
	mb.Not(3, 0)
	mb.New(4, cls)
	mb.NewArray(5, IntType, 0)
	mb.LoadField(3, 4, f)
	mb.StoreField(4, f, 0)
	mb.LoadStatic(3, sf)
	mb.StoreStatic(sf, 0)
	mb.ALoad(3, 5, 0)
	mb.AStore(5, 0, 2)
	mb.ArrayLen(3, 5)
	mb.If(0, Lt, 2, 0)
	mb.Goto(0)
	mb.Call(3, callee, 0)
	mb.Native(3, NativeHash, 0)
	mb.InstanceOf(3, 4, cls)
	mb.Return(3)
	// (seal will fail termination? Return at end terminates; If/Goto jump to 0 — fine.)
	prog, err := b.Seal("C", "main")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"v0 = 7", "v1 = null", "v2 = v0", "v3 = v0 + v2", "v3 = -v0", "v3 = !v0",
		"new C", "new int[v0]", "v3 = v4.fld", "v4.fld = v0",
		"v3 = C.sfld", "C.sfld = v0", "v3 = v5[v0]", "v5[v0] = v2",
		"v3 = len(v5)", "if v0 < v2 goto 0", "goto 0",
		"call C.callee", "native hash", "v4 instanceof C", "return v3",
	}
	dis := prog.Disassemble()
	for _, w := range want {
		if !strings.Contains(dis, w) {
			t.Errorf("disassembly missing %q:\n%s", w, dis)
		}
	}
	// Op and operator String methods.
	ops := []string{OpConst.String(), OpIf.String(), Add.String(), Shr.String(), Le.String(), NativeDBQuery.String()}
	for _, o := range ops {
		if o == "" || strings.HasPrefix(o, "op(") || strings.HasPrefix(o, "bin(") {
			t.Errorf("bad op string %q", o)
		}
	}
	if _, ok := NativeByName("rand"); !ok {
		t.Error("NativeByName(rand) failed")
	}
	if _, ok := NativeByName("nope"); ok {
		t.Error("NativeByName(nope) should fail")
	}
}

func TestValidateOperandSlotRanges(t *testing.T) {
	cases := []func(*Builder, *Class, *Method){
		func(b *Builder, c *Class, m *Method) { // bad dst
			mb := b.Body(m)
			mb.m.Code = append(mb.m.Code, Instr{Op: OpConst, Dst: 99, A: -1, B: -1, C2: -1})
			mb.m.Code = append(mb.m.Code, Instr{Op: OpReturn, Dst: -1, A: -1, B: -1, C2: -1})
		},
		func(b *Builder, c *Class, m *Method) { // bad astore operand
			mb := b.Body(m)
			mb.Const(0, 1)
			mb.m.Code = append(mb.m.Code, Instr{Op: OpAStore, A: 0, B: 0, C2: 50, Dst: -1})
			mb.m.Code = append(mb.m.Code, Instr{Op: OpReturn, Dst: -1, A: -1, B: -1, C2: -1})
		},
	}
	for i, build := range cases {
		b := NewBuilder()
		cls := b.Class("Main", nil)
		m := b.Method(cls, "main", true, 0, nil)
		build(b, cls, m)
		if _, err := b.Seal("Main", "main"); err == nil {
			t.Errorf("case %d: want slot-range error", i)
		}
	}
}
