// Package testprogs provides small hand-built IR programs that reproduce the
// paper's running examples. They are shared by unit tests, the experiment
// harness, and the documentation examples.
package testprogs

import (
	"fmt"

	"lowutil/internal/ir"
)

// Figure1 is the paper's Figure 1 example, adapted to the IR's granularity:
//
//	a = 0
//	c = f(a)        where int f(int e) { return e >> 2; }
//	d = c * 3
//	b = c + d
//
// Markers identify the instructions whose costs the test inspects.
type Figure1Markers struct {
	Prog *ir.Program
	// BInstr computes b = c + d.
	BInstr *ir.Instr
	// BSlot is the local slot holding b in main.
	BSlot int
	// DistinctCost is the number of instructions in b's backward thin
	// slice (the correct, non-double-counted cost).
	DistinctCost int64
}

// Figure1 builds the example.
func Figure1() *Figure1Markers {
	b := ir.NewBuilder()
	cls := b.Class("Main", nil)

	f := b.Method(cls, "f", true, 1, ir.IntType)
	fb := b.Body(f)
	fb.Const(1, 2)          // two = 2
	fb.Bin(2, ir.Shr, 0, 1) // r = e >> two
	fb.Return(2)

	main := b.Method(cls, "main", true, 0, nil)
	mb := b.Body(main)
	const (
		vA = 0
		vC = 1
		vD = 2
		vB = 3
		vT = 4
	)
	mb.Const(vA, 0)                   // a = 0
	mb.Call(vC, f, vA)                // c = f(a)
	mb.Const(vT, 3)                   // t = 3
	mb.Bin(vD, ir.Mul, vC, vT)        // d = c * t
	bPC := mb.Bin(vB, ir.Add, vC, vD) // b = c + d
	mb.ReturnVoid()

	prog, err := b.Seal("Main", "main")
	if err != nil {
		panic(fmt.Sprintf("testprogs: %v", err))
	}
	// Backward thin slice of b: {b-add, d-mul, const3, call, f-shr, f-const2,
	// const0} = 7 instruction instances, each executed once.
	return &Figure1Markers{
		Prog:         prog,
		BInstr:       &main.Code[bPC],
		BSlot:        vB,
		DistinctCost: 7,
	}
}

// Figure3Markers identifies the pieces of the IntList example of Figure 3:
// objects created at SiteA (the paper's O33) carry an expensively computed
// field t whose value is immediately copied into an int array (the paper's
// O32/O24), and the array elements are never read.
type Figure3Markers struct {
	Prog *ir.Program

	// SiteList, SiteArr, SiteA are the allocation-site indices of the
	// IntList, its int[] backing array, and the A temporaries.
	SiteList int
	SiteArr  int
	SiteA    int

	// FieldT is A.t; FieldData and FieldSize are IntList's fields.
	FieldT, FieldData, FieldSize *ir.Field

	// N is the loop trip count, K the inner (expensive-compute) trip count.
	N, K int64
}

// Figure3 builds the IntList example. n is the outer trip count and k the
// per-iteration computation effort.
func Figure3(n, k int64) *Figure3Markers {
	b := ir.NewBuilder()

	aCls := b.Class("A", nil)
	fieldT := b.Field(aCls, "t", ir.IntType)

	listCls := b.Class("IntList", nil)
	intArr := b.ArrayType(ir.IntType)
	fieldData := b.Field(listCls, "data", intArr)
	fieldSize := b.Field(listCls, "size", ir.IntType)

	// IntList.add(this, v): data[size] = v; size = size + 1
	add := b.Method(listCls, "add", false, 2, nil)
	ab := b.Body(add)
	const (
		aThis = 0
		aV    = 1
		aArr  = 2
		aSz   = 3
		aOne  = 4
	)
	ab.LoadField(aArr, aThis, fieldData)
	ab.LoadField(aSz, aThis, fieldSize)
	ab.AStore(aArr, aSz, aV)
	ab.Const(aOne, 1)
	ab.Bin(aSz, ir.Add, aSz, aOne)
	ab.StoreField(aThis, fieldSize, aSz)
	ab.ReturnVoid()

	mainCls := b.Class("Main", nil)
	main := b.Method(mainCls, "main", true, 0, nil)
	mb := b.Body(main)
	const (
		vList = 0
		vArr  = 1
		vN    = 2
		vI    = 3
		vA    = 4
		vS    = 5
		vK    = 6
		vJ    = 7
		vTmp  = 8
		vOne  = 9
		vZero = 10
		vT    = 11
	)
	mb.Const(vN, n)
	mb.Const(vK, k)
	mb.Const(vOne, 1)
	mb.Const(vZero, 0)
	siteListPC := mb.New(vList, listCls)
	siteArrPC := mb.NewArray(vArr, ir.IntType, vN)
	mb.StoreField(vList, fieldData, vArr)
	mb.StoreField(vList, fieldSize, vZero)
	mb.Move(vI, vZero)
	loopHead := mb.If(vI, ir.Ge, vN, -1) // patched to exit
	siteAPC := mb.New(vA, aCls)
	// s = 0; for j < k: s = s + i*j  (the expensive computation)
	mb.Move(vS, vZero)
	mb.Move(vJ, vZero)
	innerHead := mb.If(vJ, ir.Ge, vK, -1)
	mb.Bin(vTmp, ir.Mul, vI, vJ)
	mb.Bin(vS, ir.Add, vS, vTmp)
	mb.Bin(vJ, ir.Add, vJ, vOne)
	mb.Goto(innerHead)
	innerExit := mb.PC()
	mb.Patch(innerHead, innerExit)
	mb.StoreField(vA, fieldT, vS) // a.t = s
	mb.LoadField(vT, vA, fieldT)  // t = a.t
	mb.Call(-1, add, vList, vT)   // list.add(t)
	mb.Bin(vI, ir.Add, vI, vOne)
	mb.Goto(loopHead)
	exit := mb.PC()
	mb.Patch(loopHead, exit)
	mb.ReturnVoid()

	prog, err := b.Seal("Main", "main")
	if err != nil {
		panic(fmt.Sprintf("testprogs: %v", err))
	}
	return &Figure3Markers{
		Prog:      prog,
		SiteList:  main.Code[siteListPC].AllocSite,
		SiteArr:   main.Code[siteArrPC].AllocSite,
		SiteA:     main.Code[siteAPC].AllocSite,
		FieldT:    fieldT,
		FieldData: fieldData,
		FieldSize: fieldSize,
		N:         n,
		K:         k,
	}
}

// Figure6Markers identifies the eclipse isPackage/directoryList idiom of
// Figure 6: a List is expensively populated and then used only for a
// null/size check.
type Figure6Markers struct {
	Prog     *ir.Program
	SiteList int // the "problematic" ArrayList allocation site
	SiteArr  int
}

// Figure6 builds the idiom: directoryList(n) constructs a list and fills it
// with n expensively computed entries; isPackage calls it and only compares
// the result against null; main calls isPackage m times.
func Figure6(n, m int64) *Figure6Markers {
	b := ir.NewBuilder()

	listCls := b.Class("List", nil)
	intArr := b.ArrayType(ir.IntType)
	fData := b.Field(listCls, "data", intArr)
	fSize := b.Field(listCls, "size", ir.IntType)

	add := b.Method(listCls, "add", false, 2, nil)
	ab := b.Body(add)
	ab.LoadField(2, 0, fData)
	ab.LoadField(3, 0, fSize)
	ab.AStore(2, 3, 1)
	ab.Const(4, 1)
	ab.Bin(3, ir.Add, 3, 4)
	ab.StoreField(0, fSize, 3)
	ab.ReturnVoid()

	cpCls := b.Class("ClasspathDirectory", nil)
	listRef := b.RefType(listCls)

	// directoryList(this, pkg): ret = new List; fill with n entries each
	// requiring real work; return ret.
	dirList := b.Method(cpCls, "directoryList", false, 2, listRef)
	var pcList, pcArr int
	{
		db := b.Body(dirList)
		const (
			dThis = 0
			dPkg  = 1
			dRet  = 2
			dArr  = 3
			dN    = 4
			dI    = 5
			dV    = 6
			dOne  = 7
			dZero = 8
			dT    = 9
		)
		_ = dThis
		pcL := db.New(dRet, listCls) // the problematic allocation
		db.Const(dN, n)
		pcA := db.NewArray(dArr, ir.IntType, dN)
		db.StoreField(dRet, fData, dArr)
		db.Const(dZero, 0)
		db.StoreField(dRet, fSize, dZero)
		db.Const(dOne, 1)
		db.Move(dI, dZero)
		head := db.If(dI, ir.Ge, dN, -1)
		// v = (pkg*31 + i) ^ (i<<3): the "find files" work
		db.Const(dT, 31)
		db.Bin(dV, ir.Mul, dPkg, dT)
		db.Bin(dV, ir.Add, dV, dI)
		db.Const(dT, 3)
		db.Bin(dT, ir.Shl, dI, dT)
		db.Bin(dV, ir.Xor, dV, dT)
		db.Call(-1, add, dRet, dV)
		db.Bin(dI, ir.Add, dI, dOne)
		db.Goto(head)
		db.Patch(head, db.PC())
		db.Return(dRet)
		pcList, pcArr = pcL, pcA
	}

	// isPackage(this, pkg): return directoryList(pkg) != null
	isPkg := b.Method(cpCls, "isPackage", false, 2, ir.BoolType)
	{
		pb := b.Body(isPkg)
		const (
			pThis = 0
			pPkg  = 1
			pL    = 2
			pR    = 3
			pNull = 4
		)
		pb.Call(pL, dirList, pThis, pPkg)
		pb.Null(pNull)
		pb.Const(pR, 1)
		t := pb.If(pL, ir.Ne, pNull, -1)
		pb.Const(pR, 0)
		pb.Patch(t, pb.PC())
		pb.Return(pR)
	}

	mainCls := b.Class("Main", nil)
	main := b.Method(mainCls, "main", true, 0, nil)
	{
		mb := b.Body(main)
		const (
			vCP  = 0
			vM   = 1
			vI   = 2
			vOne = 3
			vR   = 4
		)
		mb.New(vCP, cpCls)
		mb.Const(vM, m)
		mb.Const(vOne, 1)
		mb.Const(vI, 0)
		head := mb.If(vI, ir.Ge, vM, -1)
		mb.Call(vR, isPkg, vCP, vI)
		mb.Native(-1, ir.NativeAssert, vR)
		mb.Bin(vI, ir.Add, vI, vOne)
		mb.Goto(head)
		mb.Patch(head, mb.PC())
		mb.ReturnVoid()
	}

	prog, err := b.Seal("Main", "main")
	if err != nil {
		panic(fmt.Sprintf("testprogs: %v", err))
	}
	return &Figure6Markers{
		Prog:     prog,
		SiteList: dirList.Code[pcList].AllocSite,
		SiteArr:  dirList.Code[pcArr].AllocSite,
	}
}

// KitchenSink builds a program that executes every opcode at least once —
// including the ones MJ's front end never emits directly (static fields) —
// so tracers can be exercised for full instruction coverage.
func KitchenSink() *ir.Program {
	b := ir.NewBuilder()
	base := b.Class("Base", nil)
	fv := b.Field(base, "v", ir.IntType)
	derived := b.Class("Derived", base)

	holder := b.Class("Holder", nil)
	sCount := b.StaticField(holder, "count", ir.IntType)
	sLast := b.StaticField(holder, "last", b.RefType(base))

	twice := b.Method(base, "twice", false, 1, ir.IntType)
	{
		tb := b.Body(twice)
		tb.LoadField(1, 0, fv)
		tb.Const(2, 2)
		tb.Bin(3, ir.Mul, 1, 2)
		tb.Return(3)
	}

	cls := b.Class("Main", nil)
	m := b.Method(cls, "main", true, 0, nil)
	mb := b.Body(m)
	const (
		vObj, vArr, vI, vTmp, vTmp2, vRes, vNil = 0, 1, 2, 3, 4, 5, 6
	)
	mb.Const(vI, 4)                   // const
	mb.New(vObj, derived)             // new (subclass)
	mb.StoreField(vObj, fv, vI)       // putfield
	mb.LoadField(vTmp, vObj, fv)      // getfield
	mb.Neg(vTmp2, vTmp)               // neg
	mb.Not(vTmp2, vTmp2)              // not (on nonzero -> 0)
	mb.NewArray(vArr, ir.IntType, vI) // newarray
	mb.ArrayLen(vTmp2, vArr)          // arraylen
	mb.Const(vTmp2, 1)
	mb.AStore(vArr, vTmp2, vI)           // astore
	mb.ALoad(vRes, vArr, vTmp2)          // aload
	mb.StoreStatic(sCount, vRes)         // putstatic
	mb.LoadStatic(vTmp, sCount)          // getstatic
	mb.StoreStatic(sLast, vObj)          // putstatic (ref)
	mb.InstanceOf(vTmp2, vObj, base)     // instanceof
	br := mb.If(vTmp2, ir.Ne, vTmp2, -1) // if (never taken: x != x)
	mb.Call(vRes, twice, vObj)           // virtual call
	mb.Patch(br, mb.PC())
	mb.Null(vNil)                  // null const
	mb.Move(vTmp, vRes)            // move
	mb.Bin(vTmp, ir.Div, vTmp, vI) // bin with div
	mb.Bin(vTmp, ir.Rem, vTmp, vI)
	mb.Bin(vTmp, ir.Shl, vTmp, vI)
	mb.Bin(vTmp, ir.Shr, vTmp, vI)
	mb.Bin(vTmp, ir.And, vTmp, vI)
	mb.Bin(vTmp, ir.Or, vTmp, vI)
	mb.Bin(vTmp, ir.Xor, vTmp, vI)
	mb.Bin(vTmp, ir.Sub, vTmp, vI)
	mb.Native(vTmp2, ir.NativeRand, vI) // natives
	mb.Native(vTmp2, ir.NativeTime)
	mb.Native(vTmp2, ir.NativeFloatToBits, vI)
	mb.Native(vTmp2, ir.NativeBitsToFloat, vTmp2)
	mb.Native(vTmp2, ir.NativeHash, vI)
	mb.Native(vTmp2, ir.NativeDBQuery, vI, vTmp)
	mb.Native(-1, ir.NativeAssert, vI)
	mb.Native(-1, ir.NativePrintChar, vI)
	mb.Native(-1, ir.NativePrint, vTmp)
	mb.Goto(mb.PC() + 1) // goto
	mb.ReturnVoid()

	prog, err := b.Seal("Main", "main")
	if err != nil {
		panic(fmt.Sprintf("testprogs: %v", err))
	}
	return prog
}
