package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const chartMJ = "testdata/chart.mj"
const npeMJ = "testdata/npe.mj"

func TestCmdRunAndDisasm(t *testing.T) {
	if err := cmdRun([]string{chartMJ}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := cmdDisasm([]string{chartMJ}); err != nil {
		t.Fatalf("disasm: %v", err)
	}
}

func TestCmdProfileAndVariants(t *testing.T) {
	if err := cmdProfile([]string{"-s", "8", "-top", "3", chartMJ}); err != nil {
		t.Fatalf("profile: %v", err)
	}
	if err := cmdProfile([]string{"-hops", "2", chartMJ}); err != nil {
		t.Fatalf("profile -hops: %v", err)
	}
	if err := cmdProfile([]string{"-control", chartMJ}); err != nil {
		t.Fatalf("profile -control: %v", err)
	}
	if err := cmdCaches([]string{chartMJ}); err != nil {
		t.Fatalf("caches: %v", err)
	}
}

func TestCmdProfileSaveLoad(t *testing.T) {
	dir := t.TempDir()
	saved := filepath.Join(dir, "profile.json")
	if err := cmdProfile([]string{"-save", saved, chartMJ}); err != nil {
		t.Fatalf("profile -save: %v", err)
	}
	if _, err := os.Stat(saved); err != nil {
		t.Fatalf("saved profile missing: %v", err)
	}
	if err := cmdProfile([]string{"-load", saved, chartMJ}); err != nil {
		t.Fatalf("profile -load: %v", err)
	}
}

func TestCmdClients(t *testing.T) {
	if err := cmdNullcheck([]string{npeMJ}); err != nil {
		t.Fatalf("nullcheck: %v", err)
	}
	if err := cmdCopies([]string{chartMJ}); err != nil {
		t.Fatalf("copies: %v", err)
	}
	if err := cmdPredicates([]string{"-min", "10", chartMJ}); err != nil {
		t.Fatalf("predicates: %v", err)
	}
	if err := cmdOverwrites([]string{"-min", "5", chartMJ}); err != nil {
		t.Fatalf("overwrites: %v", err)
	}
}

// TestCmdSlice drives the slice subcommand under both modes and pins
// byte-stability of the printed report by capturing stdout twice.
func TestCmdSlice(t *testing.T) {
	capture := func(args []string) string {
		t.Helper()
		old := os.Stdout
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		os.Stdout = w
		cmdErr := cmdSlice(args)
		w.Close()
		os.Stdout = old
		out, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		if cmdErr != nil {
			t.Fatalf("slice %v: %v", args, cmdErr)
		}
		return string(out)
	}
	rta := capture([]string{chartMJ})
	if !strings.Contains(rta, "static slice (mode=rta, objctx=off)") {
		t.Errorf("rta header missing:\n%s", rta)
	}
	if rta != capture([]string{chartMJ}) {
		t.Error("slice output is not byte-stable")
	}
	cha := capture([]string{"-mode", "cha", "-objctx", "-top", "3", chartMJ})
	if !strings.Contains(cha, "static slice (mode=cha, objctx=on)") {
		t.Errorf("cha header missing:\n%s", cha)
	}
	if err := cmdSlice([]string{"-mode", "bogus", chartMJ}); err == nil {
		t.Error("want unknown-mode error")
	}
}

// TestCmdVetAndSSA drives the vet engines and the SSA dump command.
func TestCmdVetAndSSA(t *testing.T) {
	// chart.mj is vet-clean under both engines; a finding would surface as
	// a non-nil "N finding(s)" error.
	if err := cmdVet([]string{chartMJ}); err != nil && !strings.Contains(err.Error(), "finding") {
		t.Fatalf("vet: %v", err)
	}
	if err := cmdVet([]string{"-engine", "dense", chartMJ}); err != nil && !strings.Contains(err.Error(), "finding") {
		t.Fatalf("vet -engine dense: %v", err)
	}
	if err := cmdVet([]string{"-engine", "bogus", chartMJ}); err == nil {
		t.Error("want unknown-engine error")
	}
	if err := cmdSSA([]string{chartMJ}); err != nil {
		t.Fatalf("ssa: %v", err)
	}
	if err := cmdSSA([]string{"-m", "No.such", chartMJ}); err == nil {
		t.Error("want unknown-method error")
	}
}

// TestCmdFuzz drives the fuzz subcommand over a small deterministic batch:
// two identical-seed runs must produce byte-identical stdout with zero
// violations, and the JSON mode must carry the same counters.
func TestCmdFuzz(t *testing.T) {
	capture := func(args []string) string {
		t.Helper()
		old := os.Stdout
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		os.Stdout = w
		cmdErr := cmdFuzz(args)
		w.Close()
		os.Stdout = old
		out, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		if cmdErr != nil {
			t.Fatalf("fuzz %v: %v", args, cmdErr)
		}
		return string(out)
	}
	a := capture([]string{"-seed", "1", "-n", "3"})
	if !strings.Contains(a, "programs=3") || !strings.Contains(a, "failures=0") {
		t.Errorf("unexpected summary:\n%s", a)
	}
	if a != capture([]string{"-seed", "1", "-n", "3"}) {
		t.Error("fuzz output is not byte-identical across same-seed runs")
	}
	j := capture([]string{"-seed", "1", "-n", "2", "-json"})
	if !strings.Contains(j, `"programs": 2`) || !strings.Contains(j, `"failures": null`) {
		t.Errorf("unexpected JSON summary:\n%s", j)
	}
	if err := cmdFuzz([]string{"-n", "0"}); err == nil {
		t.Error("want error for -n 0 without -minutes")
	}
	if err := cmdFuzz([]string{"extra.mj"}); err == nil {
		t.Error("want error for positional argument")
	}
}

func TestCmdErrors(t *testing.T) {
	if err := cmdRun([]string{"testdata/missing.mj"}); err == nil {
		t.Error("want missing-file error")
	}
	if err := cmdRun([]string{}); err == nil || !strings.Contains(err.Error(), "exactly one") {
		t.Errorf("want arg-count error, got %v", err)
	}
}
