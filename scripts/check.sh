#!/bin/sh
# Pre-PR gate: formatting, vet, build, tests. Run via `make check` or
# directly. Fails fast with the first offending step.
set -e
cd "$(dirname "$0")/.."

unformatted=$(gofmt -s -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt -s: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
# A second, named vet pass for the two analyzers whose findings have bitten
# this codebase before (copied sync.Mutex values, code after panic/return):
# running them alone makes a failure name the analyzer instead of drowning
# it in the full-suite output.
go vet -copylocks -unreachable ./...
go build ./...
# -shuffle=on randomizes test execution order within each package, keeping
# hidden inter-test state dependencies from taking root.
go test -shuffle=on ./...
# Public-API pin: the exported surface of the root package must match the
# checked-in golden (scripts/apisurface.golden).
sh scripts/apisurface.sh
# Static-analysis gates, run explicitly so a failure names the gate: the
# vet lint suite over all 18 workloads against its golden files, and the
# static-vs-dynamic Gcost containment harness (-short subset — the full
# 18-workload × {CHA, RTA} sweep already ran inside `go test ./...`).
make lint
go test ./internal/interproc -run TestSoundnessAllWorkloads -short -count=1
# Rank-correlation regression gate: the frequency-weighted static bounds
# must keep matching the recorded precision baseline
# (internal/evalharness/testdata/precision.golden) and beating the
# unweighted bounds on mean Spearman rho.
go test ./internal/evalharness -run TestPrecisionRankCorrelation -short -count=1
# Static-audit gates. Soundness runs the full 18-workload sweep (non-short:
# every dynamically observed escape must be within the static verdict);
# the golden gate pins the ranked audit reports; the precision gate pins
# the audit-vs-dynamic Spearman rows and enforces the >= +0.70 mean floor.
# Regenerate audit goldens after an intended change with
# `make audit-goldens`.
go test ./internal/escape -run TestEscapeSoundnessAllWorkloads -count=1
go test ./internal/escape -run TestAuditGoldenWorkloads -count=1
go test ./internal/evalharness -run TestAuditPrecisionRankCorrelation -short -count=1
# Short differential-fuzzing budget: a small deterministic batch through
# every engine-pair invariant (see DESIGN.md §14). The long soak is
# `make fuzz`.
go run ./cmd/lowutil fuzz -seed 1 -n 50
# The analysis pipeline is parallel; -short keeps the race pass fast by
# trimming the all-workload differential sweeps to a subset.
go test -race -short -shuffle=on ./...
# Smoke-run the dispatch benchmark (one iteration): catches handler-table
# regressions that only manifest under the benchmark harness, without
# paying for a timed run.
go test -run=NONE -bench=Dispatch -benchtime=1x .
# Perf-trajectory report: compares the two newest BENCH_*.json. Report-only
# here; `make bench` runs the same comparison as a hard gate.
sh scripts/benchdiff.sh -report
echo "check: OK"
