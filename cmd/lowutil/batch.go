package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"time"

	"lowutil"
	"lowutil/client"
	"lowutil/internal/jobs"
	"lowutil/internal/server"
	"lowutil/internal/workloads"
)

// cmdBatch drives the full Table 1 workload corpus through the async job
// queue concurrently — an in-process service on a loopback port, the
// public client SDK in front of it — and prints one merged report, sorted
// by workload name so the output is deterministic regardless of how the
// queue interleaved the runs.
func cmdBatch(args []string) error {
	fs := flag.NewFlagSet("batch", flag.ContinueOnError)
	scale := fs.Int("scale", 1, "workload scale factor")
	top := fs.Int("top", lowutil.DefaultTop, "findings per workload report")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent queue workers")
	timeout := fs.Duration("timeout", 5*time.Minute, "overall batch deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("batch takes no positional arguments")
	}

	srv := server.New(server.Config{
		Logger: slog.New(slog.NewJSONHandler(io.Discard, nil)),
		Jobs:   jobs.Config{Workers: *workers},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer func() {
		hs.Close()
		srv.Close()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := client.New("http://" + ln.Addr().String())

	all := workloads.All()
	reqs := make([]client.Job, len(all))
	for i, w := range all {
		reqs[i] = client.Job{Spec: client.Spec{
			Kind:   client.KindReport,
			Source: w.Source(*scale),
			Top:    *top,
		}}
	}
	start := time.Now()
	batch, err := c.SubmitBatch(ctx, "", reqs)
	if err != nil {
		return err
	}
	final, err := c.WaitBatch(ctx, batch)
	if err != nil {
		return err
	}

	// Key statuses by submission index: BatchStatus omits jobs whose
	// records were GC'd, so the slice is not guaranteed to align
	// positionally with the submitted batch.
	byIndex := make(map[int]*client.JobStatus, len(final))
	for _, st := range final {
		byIndex[st.Index] = st
	}

	order := make([]int, len(all))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return all[order[a]].Name < all[order[b]].Name })

	failed := 0
	for _, i := range order {
		st := byIndex[i]
		fmt.Printf("== %s ==\n", all[i].Name)
		if st == nil {
			failed++
			fmt.Printf("FAILED: job record evicted before its status was read\n\n")
			continue
		}
		if st.State != "done" || st.Result == nil {
			failed++
			if st.Err != nil {
				fmt.Printf("FAILED (%s): %s\n\n", st.Err.Code, st.Err.Message)
			} else {
				fmt.Printf("FAILED: state %s\n\n", st.State)
			}
			continue
		}
		var rep client.ReportResult
		if err := st.Result.Decode(&rep); err != nil {
			return fmt.Errorf("%s: decoding result: %w", all[i].Name, err)
		}
		fmt.Println(rep.Report)
	}
	fmt.Fprintf(os.Stderr, "batch: %d workloads in %v (%d workers)\n",
		len(all), time.Since(start).Round(time.Millisecond), *workers)
	if failed > 0 {
		return fmt.Errorf("%d workload(s) failed", failed)
	}
	return nil
}
