package par

import "sync"

// Pool is a persistent bounded worker pool. Unlike ForEach, which fans a
// fixed index space over transient goroutines, a Pool keeps its workers
// alive across submissions, so long-lived subsystems (the job queue) can
// bound their total execution parallelism with one shared pool instead of
// spawning per-task goroutines. Submission blocks until a worker is free —
// the pool is the backpressure, not a buffer.
type Pool struct {
	tasks chan func()
	stop  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once
}

// NewPool starts a pool of n workers. n <= 0 is treated as 1.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = 1
	}
	p := &Pool{tasks: make(chan func()), stop: make(chan struct{})}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for {
				select {
				case fn := <-p.tasks:
					fn()
				case <-p.stop:
					return
				}
			}
		}()
	}
	return p
}

// Do runs fn on a pool worker and returns when fn has finished. It blocks
// while all workers are busy. Do reports false without running fn if the
// pool is (or becomes) closed before a worker picks the task up.
func (p *Pool) Do(fn func()) bool {
	done := make(chan struct{})
	task := func() {
		defer close(done)
		fn()
	}
	select {
	case p.tasks <- task:
		<-done
		return true
	case <-p.stop:
		return false
	}
}

// Close stops the workers once their in-flight tasks finish and waits for
// them to exit. Close is idempotent.
func (p *Pool) Close() {
	p.once.Do(func() { close(p.stop) })
	p.wg.Wait()
}
