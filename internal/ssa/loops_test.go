package ssa

import (
	"testing"

	"lowutil/internal/ir"
)

// buildLoop emits `for (i = init; i cmpKeep bound; i += step) body` the way
// mjc lowers while loops: the header tests the negated condition with the
// taken edge exiting.
func analyzeLoopMethod(t *testing.T, init, bound, step int64, exitCmp ir.Cmp) *MethodInfo {
	t.Helper()
	_, m := buildMain(t, 0, func(_ *ir.Builder, bb *ir.BodyBuilder) {
		bb.Const(0, init)
		bb.Const(1, bound)
		bb.Const(2, step)
		head := bb.PC()
		exit := bb.If(0, exitCmp, 1, 0)
		bb.Native(-1, ir.NativePrint, 0)
		bb.Bin(0, ir.Add, 0, 2)
		bb.Goto(head)
		bb.Patch(exit, bb.PC())
		bb.ReturnVoid()
	})
	return AnalyzeMethod(m)
}

func TestTripCountExact(t *testing.T) {
	cases := []struct {
		init, bound, step int64
		exitCmp           ir.Cmp
		want              int64
	}{
		{0, 10, 1, ir.Ge, 10},  // while i < 10
		{0, 10, 3, ir.Ge, 4},   // 0,3,6,9
		{0, 10, 1, ir.Gt, 11},  // while i <= 10
		{5, 5, 1, ir.Ge, 0},    // never runs
		{10, 0, -2, ir.Le, 5},  // while i > 0, i -= 2
		{0, 7, 1, ir.Eq, 7},    // while i != 7
		{42, 42, 1, ir.Eq, 0},  // exits immediately
		{0, -1, 1, ir.Ge, 0},   // bound below init
		{-4, 4, 2, ir.Ge, 4},   // negative start
		{0, 10, -1, ir.Ge, -1}, // diverges downward: not a counted loop
	}
	for _, tc := range cases {
		mi := analyzeLoopMethod(t, tc.init, tc.bound, tc.step, tc.exitCmp)
		if len(mi.Forest.Loops) != 1 {
			t.Fatalf("case %+v: %d loops, want 1", tc, len(mi.Forest.Loops))
		}
		if got := mi.Forest.Loops[0].Trip; got != tc.want {
			t.Errorf("init=%d bound=%d step=%d exit=%v: trip=%d, want %d",
				tc.init, tc.bound, tc.step, tc.exitCmp, got, tc.want)
		}
	}
}

func TestTripCountUnknownBound(t *testing.T) {
	// The bound is a parameter: no constant trip count.
	_, m := buildMain(t, 1, func(_ *ir.Builder, bb *ir.BodyBuilder) {
		bb.Const(1, 0)
		bb.Const(2, 1)
		head := bb.PC()
		exit := bb.If(1, ir.Ge, 0, 0)
		bb.Bin(1, ir.Add, 1, 2)
		bb.Goto(head)
		bb.Patch(exit, bb.PC())
		bb.Native(-1, ir.NativePrint, 1)
		bb.ReturnVoid()
	})
	mi := AnalyzeMethod(m)
	if len(mi.Forest.Loops) != 1 {
		t.Fatalf("%d loops, want 1", len(mi.Forest.Loops))
	}
	if got := mi.Forest.Loops[0].Trip; got != -1 {
		t.Fatalf("trip=%d, want -1 (unknown)", got)
	}
}

// TestNestedLoops checks the forest structure and the multiplied weights of
// a depth-2 nest with known trip counts.
func TestNestedLoops(t *testing.T) {
	var innerBody int
	_, m := buildMain(t, 0, func(_ *ir.Builder, bb *ir.BodyBuilder) {
		bb.Const(0, 0) // i
		bb.Const(1, 4) // n
		bb.Const(2, 1) // one
		oHead := bb.PC()
		oExit := bb.If(0, ir.Ge, 1, 0)
		bb.Const(3, 0) // j
		bb.Const(4, 6) // m
		iHead := bb.PC()
		iExit := bb.If(3, ir.Ge, 4, 0)
		innerBody = bb.Native(-1, ir.NativePrint, 3)
		bb.Bin(3, ir.Add, 3, 2)
		bb.Goto(iHead)
		bb.Patch(iExit, bb.PC())
		bb.Bin(0, ir.Add, 0, 2)
		bb.Goto(oHead)
		bb.Patch(oExit, bb.PC())
		bb.ReturnVoid()
	})
	mi := AnalyzeMethod(m)
	ft := mi.Forest
	if len(ft.Loops) != 2 {
		t.Fatalf("%d loops, want 2", len(ft.Loops))
	}
	var inner, outer *Loop
	for i := range ft.Loops {
		if ft.Loops[i].Depth == 2 {
			inner = &ft.Loops[i]
		} else {
			outer = &ft.Loops[i]
		}
	}
	if inner == nil || outer == nil {
		t.Fatalf("want depths 1 and 2, got %d and %d", ft.Loops[0].Depth, ft.Loops[1].Depth)
	}
	if inner.Parent != indexOf(ft, outer) {
		t.Fatal("inner loop's parent is not the outer loop")
	}
	if outer.Trip != 4 || inner.Trip != 6 {
		t.Fatalf("trips outer=%d inner=%d, want 4 and 6", outer.Trip, inner.Trip)
	}
	b := mi.F.CFG.BlockOf[innerBody]
	if w := mi.BlockWeight(b); w != 24 {
		t.Fatalf("inner body weight %g, want 4*6=24", w)
	}
}

func indexOf(ft *Forest, lp *Loop) int {
	for i := range ft.Loops {
		if &ft.Loops[i] == lp {
			return i
		}
	}
	return -1
}

// TestWeightsDeadBlock: SCCP-dead blocks weigh zero, live straight-line code
// weighs one.
func TestWeightsDeadBlock(t *testing.T) {
	var deadPC, livePC int
	prog, _ := buildMain(t, 0, func(_ *ir.Builder, bb *ir.BodyBuilder) {
		bb.Const(0, 0)
		bb.Const(1, 7)
		j := bb.If(0, ir.Ne, 0, 0)
		g := bb.Goto(0)
		bb.Patch(j, bb.PC())
		deadPC = bb.Const(1, 99)
		bb.Patch(g, bb.PC())
		livePC = bb.Native(-1, ir.NativePrint, 1)
		bb.ReturnVoid()
	})
	w := Weights(prog)
	var deadID, liveID int
	for _, in := range prog.Instrs {
		if in.PC == deadPC {
			deadID = in.ID
		}
		if in.PC == livePC {
			liveID = in.ID
		}
	}
	if w[deadID] != 0 {
		t.Fatalf("dead instruction weighs %g, want 0", w[deadID])
	}
	if w[liveID] != 1 {
		t.Fatalf("live instruction weighs %g, want 1", w[liveID])
	}
}

// TestWeightsLoopDefault: a loop with an unknown bound weighs DefaultTrip.
func TestWeightsLoopDefault(t *testing.T) {
	_, m := buildMain(t, 1, func(_ *ir.Builder, bb *ir.BodyBuilder) {
		bb.Const(1, 0)
		bb.Const(2, 1)
		head := bb.PC()
		exit := bb.If(1, ir.Ge, 0, 0)
		bb.Bin(1, ir.Add, 1, 2)
		bb.Goto(head)
		bb.Patch(exit, bb.PC())
		bb.Native(-1, ir.NativePrint, 1)
		bb.ReturnVoid()
	})
	mi := AnalyzeMethod(m)
	body := mi.F.CFG.BlockOf[4] // the increment
	if w := mi.BlockWeight(body); w != DefaultTrip {
		t.Fatalf("unknown-bound loop body weighs %g, want %d", w, DefaultTrip)
	}
}
