package client_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lowutil"
	"lowutil/client"
	"lowutil/internal/jobs"
	"lowutil/internal/server"
	"lowutil/internal/workloads"
)

const workSrc = `
class Box { int v; }
class Main {
  static void main() {
    int total = 0;
    for (int i = 0; i < 50; i = i + 1) {
      Box b = new Box();
      b.v = i;
      total = total + b.v;
    }
    print(total);
  }
}`

const spinSrc = `
class Main {
  static void main() {
    int i = 0;
    while (true) { i = i + 1; }
  }
}`

// newService builds a service with cfg and returns its base URL plus the
// underlying *server.Server for drains.
func newService(t *testing.T, cfg server.Config) (string, *server.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewJSONHandler(io.Discard, nil))
	}
	s := server.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts.URL, s
}

// flaky is a fault-injecting reverse proxy in front of a service handler:
// it can fail the first N requests per method+path with a bare status, and
// abort event streams after a fixed number of lines to simulate mid-stream
// disconnects.
type flaky struct {
	h http.Handler

	mu     sync.Mutex
	fails  map[string]int // "METHOD /path" → remaining injected failures
	status int
	calls  map[string]int

	abortEventsAfter int // >0: drop /events connections after N lines
}

func (f *flaky) count(key string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[key]
}

func (f *flaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	key := r.Method + " " + r.URL.Path
	f.mu.Lock()
	if f.calls == nil {
		f.calls = make(map[string]int)
	}
	f.calls[key]++
	inject := false
	if n := f.fails[key]; n > 0 {
		f.fails[key] = n - 1
		inject = true
	}
	abort := f.abortEventsAfter
	f.mu.Unlock()
	if inject {
		w.WriteHeader(f.status)
		io.WriteString(w, "injected fault\n")
		return
	}
	if abort > 0 && strings.HasSuffix(r.URL.Path, "/events") {
		w = &abortWriter{ResponseWriter: w, max: abort}
	}
	f.h.ServeHTTP(w, r)
}

// abortWriter kills the connection after max writes — the client sees a
// mid-stream disconnect with whatever lines were already flushed.
type abortWriter struct {
	http.ResponseWriter
	writes int
	max    int
}

func (w *abortWriter) Write(b []byte) (int, error) {
	w.writes++
	if w.writes > w.max {
		panic(http.ErrAbortHandler)
	}
	return w.ResponseWriter.Write(b)
}

func (w *abortWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

func newFlakyService(t *testing.T, cfg server.Config, f *flaky) string {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewJSONHandler(io.Discard, nil))
	}
	s := server.New(cfg)
	f.h = s.Handler()
	ts := httptest.NewServer(f)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts.URL
}

func fastClient(base string, opts ...client.Option) *client.Client {
	return client.New(base, append([]client.Option{
		client.WithBackoff(time.Millisecond, 10*time.Millisecond),
	}, opts...)...)
}

// metricValue scrapes one counter off /metrics.
func metricValue(t *testing.T, base, name string) int64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(raw), "\n") {
		if v, ok := strings.CutPrefix(line, name+" "); ok {
			var n int64
			fmt.Sscanf(v, "%d", &n)
			return n
		}
	}
	t.Fatalf("metric %q not found", name)
	return 0
}

// TestSubmitRetriesWithoutDuplicates: the first two submissions die with
// bare 500s; the SDK retries with the same generated idempotency key, so
// the service enqueues the batch exactly once.
func TestSubmitRetriesWithoutDuplicates(t *testing.T) {
	f := &flaky{fails: map[string]int{"POST /v2/jobs": 2}, status: http.StatusInternalServerError}
	base := newFlakyService(t, server.Config{}, f)
	c := fastClient(base)

	batch, err := c.SubmitBatch(context.Background(), "", []client.Job{
		{Spec: client.Spec{Kind: client.KindRun, Source: workSrc}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := f.count("POST /v2/jobs"); n != 3 {
		t.Errorf("submit attempts = %d, want 3 (two injected failures)", n)
	}
	if batch.Jobs[0].Duplicate {
		t.Error("first successful submission flagged duplicate")
	}
	if got := metricValue(t, base, "lowutil_jobs_submitted_total"); got != 1 {
		t.Errorf("jobs submitted = %d, want exactly 1 despite retries", got)
	}
	if _, err := c.WaitBatch(context.Background(), batch); err != nil {
		t.Fatal(err)
	}

	// An explicit key resubmitted maps onto the same jobs, flagged.
	b1, err := c.SubmitBatch(context.Background(), "stable-key", []client.Job{
		{Spec: client.Spec{Kind: client.KindCompile, Source: workSrc}},
	})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := c.SubmitBatch(context.Background(), "stable-key", []client.Job{
		{Spec: client.Spec{Kind: client.KindCompile, Source: workSrc}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if b1.ID != b2.ID || b1.Jobs[0].ID != b2.Jobs[0].ID || !b2.Jobs[0].Duplicate {
		t.Errorf("idempotent resubmission: %+v vs %+v", b1, b2)
	}
}

// TestEventsReconnectMidStream: every events connection dies after two
// lines; the SDK resumes from the last seen sequence number and the
// reassembled stream is identical to an unbroken replay.
func TestEventsReconnectMidStream(t *testing.T) {
	f := &flaky{abortEventsAfter: 2}
	base := newFlakyService(t, server.Config{
		Jobs: jobs.Config{
			BaseBackoff: time.Millisecond,
			MaxBackoff:  4 * time.Millisecond,
			FaultHook: func(jobID string, attempt int) error {
				if attempt == 1 { // lengthen the event log with one retry
					return jobs.Transient(errors.New("injected"))
				}
				return nil
			},
		},
	}, f)
	c := fastClient(base)

	batch, err := c.SubmitBatch(context.Background(), "reconnect", []client.Job{
		{Spec: client.Spec{Kind: client.KindRun, Source: workSrc}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []client.Event
	if err := c.Events(context.Background(), batch.Jobs[0].ID, 0, func(ev client.Event) error {
		got = append(got, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if conns := f.count("GET /v2/jobs/" + batch.Jobs[0].ID + "/events"); conns < 2 {
		t.Errorf("stream survived in %d connection(s); the proxy should have broken it", conns)
	}
	// Dense, exactly-once, terminal-completed.
	for i, ev := range got {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d: lost or duplicated events across reconnects: %+v", i, ev.Seq, got)
		}
	}
	if len(got) < 5 || got[len(got)-1].Type != "done" {
		t.Fatalf("unexpected reassembled trail: %+v", got)
	}

	// The reassembled stream equals an unbroken replay, byte for byte.
	f.mu.Lock()
	f.abortEventsAfter = 0
	f.mu.Unlock()
	var replay []client.Event
	if err := c.Events(context.Background(), batch.Jobs[0].ID, 0, func(ev client.Event) error {
		replay = append(replay, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(got)
	jb, _ := json.Marshal(replay)
	if !bytes.Equal(ja, jb) {
		t.Errorf("reassembled stream diverges from unbroken replay:\n%s\nvs\n%s", ja, jb)
	}
}

// TestDeadlineExpiry: a client-side deadline on a non-terminating run
// surfaces as context.DeadlineExceeded without burning retries.
func TestDeadlineExpiry(t *testing.T) {
	base, _ := newService(t, server.Config{RequestTimeout: time.Minute})
	c := fastClient(base)
	cr, err := c.Compile(context.Background(), spinSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Profile(ctx, client.ProfileRequest{Session: cr.Session})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Errorf("deadline took %v to surface", d)
	}
}

// TestBoundedRetries: a permanently failing endpoint exhausts the retry
// budget and returns the typed error; the attempt count is exact.
func TestBoundedRetries(t *testing.T) {
	f := &flaky{fails: map[string]int{"POST /v2/compile": 1000}, status: http.StatusBadGateway}
	base := newFlakyService(t, server.Config{}, f)
	c := fastClient(base, client.WithMaxRetries(2))

	_, err := c.Compile(context.Background(), workSrc)
	var ae *client.Error
	if !errors.As(err, &ae) || !ae.Retryable || ae.Status != http.StatusBadGateway {
		t.Fatalf("err = %v, want retryable *client.Error with 502", err)
	}
	if n := f.count("POST /v2/compile"); n != 3 {
		t.Errorf("attempts = %d, want 3 (1 + 2 retries)", n)
	}
}

// TestTypedErrors covers the wire → typed error mapping the facade
// promises: CompileError with position, at_capacity with Retry-After,
// canceled unwrapping to ErrCanceled.
func TestTypedErrors(t *testing.T) {
	base, _ := newService(t, server.Config{})
	c := fastClient(base, client.WithMaxRetries(0))

	_, err := c.Compile(context.Background(), "class Main { static void main() { print(x); } }")
	var ce *client.CompileError
	if !errors.As(err, &ce) || ce.Line <= 0 {
		t.Fatalf("err = %v, want *client.CompileError with position", err)
	}

	// A full queue answers with the retryable at_capacity envelope.
	block := make(chan struct{})
	defer close(block)
	base2, _ := newService(t, server.Config{Jobs: jobs.Config{
		Depth: 1, Shards: 1, Workers: 1,
		FaultHook: func(string, int) error { <-block; return errors.New("never") },
	}})
	c2 := fastClient(base2, client.WithMaxRetries(0))
	if _, err := c2.SubmitBatch(context.Background(), "fill", []client.Job{
		{Spec: client.Spec{Kind: client.KindRun, Source: workSrc}},
	}); err != nil {
		t.Fatal(err)
	}
	_, err = c2.SubmitBatch(context.Background(), "over", []client.Job{
		{Spec: client.Spec{Kind: client.KindCompile, Source: workSrc}},
	})
	var ae *client.Error
	if !errors.As(err, &ae) || ae.Code != "at_capacity" || !ae.Retryable || ae.RetryAfter <= 0 {
		t.Fatalf("err = %v, want retryable at_capacity with Retry-After", err)
	}

	// The 499 canceled envelope unwraps to the facade sentinel.
	if !errors.Is(&client.Error{Code: "canceled"}, client.ErrCanceled) {
		t.Error("canceled envelope does not unwrap to ErrCanceled")
	}
}

// TestBatchAcceptance drives all 18 Table 1 workloads through the queue
// via the SDK against a fault-injected service — deterministic injected
// cancels on first attempts plus a session LRU too small for the batch,
// forcing compiled-session evictions and recompiles between retries — and
// asserts the acceptance bar: zero lost or duplicated jobs, per-workload
// results byte-identical to sequential /v2/profile calls on a clean
// service, and byte-identical NDJSON event replays.
func TestBatchAcceptance(t *testing.T) {
	all := workloads.All()
	if len(all) != 18 {
		t.Fatalf("workload corpus has %d entries, want 18", len(all))
	}

	faulty, _ := newService(t, server.Config{
		MaxSessions: 4, // 18 workloads churn through a 4-slot session LRU
		Jobs: jobs.Config{
			Workers:     8,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  8 * time.Millisecond,
			FaultHook: func(jobID string, attempt int) error {
				// Deterministic "random" cancels: a third of all jobs lose
				// their first attempt to an injected canceled run.
				h := fnv.New32a()
				io.WriteString(h, jobID)
				if attempt == 1 && h.Sum32()%3 == 0 {
					return fmt.Errorf("%w: injected cancel", lowutil.ErrCanceled)
				}
				return nil
			},
		},
	})
	c := fastClient(faulty)

	jobsReq := make([]client.Job, len(all))
	for i, w := range all {
		jobsReq[i] = client.Job{Spec: client.Spec{Kind: client.KindProfile, Source: w.Source(1)}}
	}
	batch, err := c.SubmitBatch(context.Background(), "table1", jobsReq)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	final, err := c.WaitBatch(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}

	// Zero lost, zero duplicated.
	if len(final) != 18 {
		t.Fatalf("batch finished with %d jobs, want 18", len(final))
	}
	seen := map[string]bool{}
	injected := 0
	for i, st := range final {
		if st.State != "done" || st.Result == nil {
			t.Fatalf("workload %s: state=%s err=%+v", all[i].Name, st.State, st.Err)
		}
		if seen[st.ID] {
			t.Fatalf("duplicated job ID %s", st.ID)
		}
		seen[st.ID] = true
		if st.Attempts > 1 {
			injected++
		}
	}
	if injected == 0 {
		t.Error("fault hook injected no cancels; the acceptance run exercised nothing")
	}
	if got := metricValue(t, faulty, "lowutil_jobs_completed_total"); got != 18 {
		t.Errorf("jobs completed = %d, want 18", got)
	}
	if got := metricValue(t, faulty, "lowutil_jobs_submitted_total"); got != 18 {
		t.Errorf("jobs submitted = %d, want 18", got)
	}
	if got := metricValue(t, faulty, "lowutil_session_evictions_total"); got == 0 {
		t.Error("no session evictions; MaxSessions pressure did not bite")
	}

	// Merged batch results equal 18 sequential profile calls on a clean
	// service, byte for byte (modulo JSON framing).
	clean, _ := newService(t, server.Config{})
	cc := fastClient(clean)
	for i, w := range all {
		cr, err := cc.Compile(ctx, w.Source(1))
		if err != nil {
			t.Fatalf("%s: compile: %v", w.Name, err)
		}
		seq, err := cc.Profile(ctx, client.ProfileRequest{Session: cr.Session})
		if err != nil {
			t.Fatalf("%s: profile: %v", w.Name, err)
		}
		want, _ := json.Marshal(seq)
		var batchRes client.ProfileResult
		if err := json.Unmarshal(final[i].Result.Payload, &batchRes); err != nil {
			t.Fatalf("%s: bad payload: %v", w.Name, err)
		}
		got, _ := json.Marshal(batchRes)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: batch result diverges from sequential profile:\n%s\nvs\n%s", w.Name, got, want)
		}
	}

	// Deterministic NDJSON replay: two raw reads of every job's stream are
	// byte-identical.
	for i, st := range final {
		a := rawEvents(t, faulty, st.ID)
		b := rawEvents(t, faulty, st.ID)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: event replays differ:\n%s\nvs\n%s", all[i].Name, a, b)
		}
	}
}

func rawEvents(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v2/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}
