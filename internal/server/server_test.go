package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"lowutil"
)

// workSrc allocates enough structure for profiling to be non-trivial.
const workSrc = `
class Point { int x; int y; }
class Series {
  Point[] items;
  int size;
  void init(int cap) { this.items = new Point[cap]; this.size = 0; }
  void add(Point p) { this.items[this.size] = p; this.size = this.size + 1; }
  int count() { return this.size; }
}
class Main {
  static void main() {
    int total = 0;
    for (int s = 0; s < 10; s = s + 1) {
      Series ser = new Series();
      ser.init(40);
      for (int i = 0; i < 40; i = i + 1) {
        Point p = new Point();
        p.x = hash(s * 100 + i) % 640;
        p.y = hash(s * 200 + i) % 480;
        ser.add(p);
      }
      total = total + ser.count();
    }
    print(total);
  }
}`

// spinSrc loops forever, so only cancellation can stop it.
const spinSrc = `
class Main {
  static void main() {
    int i = 0;
    while (true) { i = i + 1; }
  }
}`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewJSONHandler(io.Discard, nil))
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// decodeEnvelope parses the unified error envelope out of an error body.
func decodeEnvelope(t *testing.T, body []byte) errorBody {
	t.Helper()
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("malformed error envelope %s: %v", body, err)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("envelope missing code or message: %s", body)
	}
	return env.Error
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func compileSession(t *testing.T, base, src string) string {
	t.Helper()
	code, body := postJSON(t, base+"/v2/compile", compileRequest{Source: src})
	if code != http.StatusOK {
		t.Fatalf("compile: status %d: %s", code, body)
	}
	var cr compileResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	return cr.Session
}

// metricValue fetches /metrics and returns the value on the line starting
// with prefix (a bare name or name{labels}).
func metricValue(t *testing.T, base, prefix string) int64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, prefix+" ") {
			v, err := strconv.ParseInt(strings.TrimSpace(strings.TrimPrefix(line, prefix+" ")), 10, 64)
			if err != nil {
				t.Fatalf("parse metric %q in line %q: %v", prefix, line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %q not found", prefix)
	return 0
}

// TestConcurrentProfiles drives 8 concurrent profile requests at one
// session and asserts exactly one of them ran the profiler: the other
// seven joined the memoized run (cache-hit counter) and all eight agree on
// the result.
func TestConcurrentProfiles(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInFlight: 16})
	id := compileSession(t, ts.URL, workSrc)

	const n = 8
	var wg sync.WaitGroup
	responses := make([]profileResponse, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body := postJSON(t, ts.URL+"/v2/profile", profileRequest{Session: id})
			codes[i] = code
			json.Unmarshal(body, &responses[i])
		}(i)
	}
	wg.Wait()

	hits := 0
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if responses[i].Steps != responses[0].Steps || responses[i].Steps == 0 {
			t.Fatalf("request %d: steps %d != %d", i, responses[i].Steps, responses[0].Steps)
		}
		if len(responses[i].Top) == 0 {
			t.Fatalf("request %d: no findings", i)
		}
		if responses[i].CacheHit {
			hits++
		}
	}
	if hits != n-1 {
		t.Errorf("cache hits = %d, want %d (exactly one run)", hits, n-1)
	}
	if got := metricValue(t, ts.URL, "lowutil_profile_cache_misses_total"); got != 1 {
		t.Errorf("profile cache misses = %d, want 1", got)
	}
	if got := metricValue(t, ts.URL, "lowutil_profile_cache_hits_total"); got != n-1 {
		t.Errorf("profile cache hits = %d, want %d", got, n-1)
	}

	// A later report request reuses the same memoized run: still no second
	// profiler execution.
	code, body := postJSON(t, ts.URL+"/v2/report", profileRequest{Session: id})
	if code != http.StatusOK {
		t.Fatalf("report: status %d: %s", code, body)
	}
	var rr reportResponse
	json.Unmarshal(body, &rr)
	if !rr.CacheHit || !strings.Contains(rr.Report, "top low-utility structures") {
		t.Errorf("report cache_hit=%v report=%q", rr.CacheHit, rr.Report)
	}
	if got := metricValue(t, ts.URL, "lowutil_profile_cache_misses_total"); got != 1 {
		t.Errorf("after report: profile cache misses = %d, want 1", got)
	}
}

// TestCompileSessionCache asserts the second compile of identical source
// is a session cache hit with the same ID.
func TestCompileSessionCache(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := postJSON(t, ts.URL+"/v2/compile", compileRequest{Source: workSrc})
	if code != http.StatusOK {
		t.Fatalf("compile: %d %s", code, body)
	}
	var first compileResponse
	json.Unmarshal(body, &first)
	if first.CacheHit {
		t.Error("first compile reported a cache hit")
	}
	_, body = postJSON(t, ts.URL+"/v2/compile", compileRequest{Source: workSrc})
	var second compileResponse
	json.Unmarshal(body, &second)
	if !second.CacheHit || second.Session != first.Session {
		t.Errorf("second compile: hit=%v session=%s want hit of %s", second.CacheHit, second.Session, first.Session)
	}
	if got := metricValue(t, ts.URL, "lowutil_sessions_created_total"); got != 1 {
		t.Errorf("sessions created = %d, want 1", got)
	}
}

// TestCancellation cancels an in-flight profile of an infinite loop and
// asserts the server unwinds promptly with the client-closed status, and
// that the aborted run is evicted so the session retries cleanly.
func TestCancellation(t *testing.T) {
	s, ts := newTestServer(t, Config{RequestTimeout: time.Minute})
	id := compileSession(t, ts.URL, spinSrc)

	ctx, cancel := context.WithCancel(context.Background())
	buf, _ := json.Marshal(profileRequest{Session: id})
	req := httptest.NewRequest("POST", "/v2/profile", bytes.NewReader(buf)).WithContext(ctx)
	rec := httptest.NewRecorder()
	start := time.Now()
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	s.Handler().ServeHTTP(rec, req)
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("cancellation took %v", d)
	}
	if rec.Code != 499 {
		t.Errorf("status = %d, want 499; body %s", rec.Code, rec.Body)
	}
	if eb := decodeEnvelope(t, rec.Body.Bytes()); eb.Code != "canceled" || !eb.Retryable {
		t.Errorf("499 envelope = %+v, want retryable canceled", eb)
	}
	sess, ok := s.sessions.get(id)
	if !ok {
		t.Fatal("session vanished")
	}
	if n := sess.cachedProfiles(); n != 0 {
		t.Errorf("canceled run left %d cache entries, want 0", n)
	}

	// The deadline path: a tight per-request timeout produces 504.
	_, ts2 := newTestServer(t, Config{RequestTimeout: 100 * time.Millisecond})
	id2 := compileSession(t, ts2.URL, spinSrc)
	code, body := postJSON(t, ts2.URL+"/v2/profile", profileRequest{Session: id2})
	if code != http.StatusGatewayTimeout {
		t.Errorf("deadline status = %d, want 504; body %s", code, body)
	}
	if eb := decodeEnvelope(t, body); eb.Code != "deadline" || eb.Retryable {
		t.Errorf("504 envelope = %+v, want non-retryable deadline", eb)
	}
}

// TestAdmissionControl fills the gate and asserts heavy endpoints shed
// load with 429 while light ones still serve.
func TestAdmissionControl(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1})
	id := compileSession(t, ts.URL, workSrc)
	if !s.gate.TryAcquire() {
		t.Fatal("fresh gate full")
	}
	defer s.gate.Release()
	code, body := postJSON(t, ts.URL+"/v2/profile", profileRequest{Session: id})
	if code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body %s", code, body)
	}
	if eb := decodeEnvelope(t, body); eb.Code != "at_capacity" || !eb.Retryable {
		t.Errorf("429 envelope = %+v, want retryable at_capacity", eb)
	}
	if code, _ := postJSON(t, ts.URL+"/v2/vet", vetRequest{Session: id}); code != http.StatusOK {
		t.Errorf("light endpoint rejected: %d", code)
	}
	if got := metricValue(t, ts.URL, "lowutil_rejected_total"); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
}

// TestErrorMapping covers the typed-error → status contract: every error
// arrives in the unified {"error":{code,message,retryable}} envelope.
func TestErrorMapping(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := postJSON(t, ts.URL+"/v2/compile", compileRequest{Source: "class Main { static void main() { print(x); } }"})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("compile error status = %d, want 422; body %s", code, body)
	}
	if eb := decodeEnvelope(t, body); eb.Code != "compile_error" || eb.Line <= 0 || eb.Retryable {
		t.Errorf("422 envelope = %+v, want compile_error with position", eb)
	}
	code, body = postJSON(t, ts.URL+"/v2/profile", profileRequest{Session: "deadbeef"})
	if code != http.StatusNotFound {
		t.Errorf("unknown session status = %d, want 404", code)
	}
	if eb := decodeEnvelope(t, body); eb.Code != "not_found" || eb.Retryable {
		t.Errorf("404 envelope = %+v, want not_found", eb)
	}
	code, body = postJSON(t, ts.URL+"/v2/profile", profileRequest{})
	if code != http.StatusBadRequest {
		t.Errorf("missing session status = %d, want 400", code)
	}
	if eb := decodeEnvelope(t, body); eb.Code != "bad_request" || eb.Retryable {
		t.Errorf("400 envelope = %+v, want bad_request", eb)
	}
}

// TestSaveLoadRoundTrip saves a profile through the server, reloads it
// through the server, and asserts the rendered report is byte-identical to
// reloading the same envelope locally — the offline deployment mode
// round-trips losslessly over HTTP.
func TestSaveLoadRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := compileSession(t, ts.URL, workSrc)

	code, envelope := postJSON(t, ts.URL+"/v2/profile/save", profileRequest{Session: id})
	if code != http.StatusOK {
		t.Fatalf("save: status %d: %s", code, envelope)
	}
	code, body := postJSON(t, ts.URL+"/v2/profile/load", loadRequest{Session: id, Profile: envelope})
	if code != http.StatusOK {
		t.Fatalf("load: status %d: %s", code, body)
	}
	var lr reportResponse
	if err := json.Unmarshal(body, &lr); err != nil {
		t.Fatal(err)
	}

	prog, err := lowutil.Compile(workSrc)
	if err != nil {
		t.Fatal(err)
	}
	local, err := prog.LoadProfile(bytes.NewReader(envelope))
	if err != nil {
		t.Fatal(err)
	}
	if want := local.Report(lowutil.DefaultTop); lr.Report != want {
		t.Errorf("server-loaded report differs from locally-loaded report:\nserver:\n%s\nlocal:\n%s", lr.Report, want)
	}

	// Loading the same envelope twice is deterministic.
	_, body2 := postJSON(t, ts.URL+"/v2/profile/load", loadRequest{Session: id, Profile: envelope})
	if !bytes.Equal(body, body2) {
		t.Error("two loads of the same envelope produced different responses")
	}
}

// TestMetricsAndHealth asserts the observability surface: request
// counters by endpoint, gauges, health, and pprof.
func TestMetricsAndHealth(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInFlight: 3})
	id := compileSession(t, ts.URL, workSrc)
	postJSON(t, ts.URL+"/v2/profile", profileRequest{Session: id})
	postJSON(t, ts.URL+"/v2/run", vetRequest{Session: id})

	if got := metricValue(t, ts.URL, `lowutil_requests_total{endpoint="compile"}`); got != 1 {
		t.Errorf("compile requests = %d, want 1", got)
	}
	if got := metricValue(t, ts.URL, `lowutil_requests_total{endpoint="profile"}`); got != 1 {
		t.Errorf("profile requests = %d, want 1", got)
	}
	if got := metricValue(t, ts.URL, `lowutil_requests_total{endpoint="run"}`); got != 1 {
		t.Errorf("run requests = %d, want 1", got)
	}
	if got := metricValue(t, ts.URL, "lowutil_sessions_live"); got != 1 {
		t.Errorf("sessions live = %d, want 1", got)
	}
	if got := metricValue(t, ts.URL, "lowutil_inflight_capacity"); got != 3 {
		t.Errorf("inflight capacity = %d, want 3", got)
	}
	if got := metricValue(t, ts.URL, "lowutil_profiled_steps_total"); got <= 0 {
		t.Errorf("profiled steps = %d, want > 0", got)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/debug/pprof/")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: %v %v", err, resp)
	}
	resp.Body.Close()
}

// TestSessionEviction bounds the LRU and asserts the oldest session falls
// out and 404s afterward.
func TestSessionEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSessions: 2})
	ids := make([]string, 3)
	for i := range ids {
		src := strings.Replace(workSrc, "int total = 0;", fmt.Sprintf("int total = %d;", i), 1)
		ids[i] = compileSession(t, ts.URL, src)
	}
	if code, _ := postJSON(t, ts.URL+"/v2/vet", vetRequest{Session: ids[0]}); code != http.StatusNotFound {
		t.Errorf("evicted session status = %d, want 404", code)
	}
	if code, _ := postJSON(t, ts.URL+"/v2/vet", vetRequest{Session: ids[2]}); code != http.StatusOK {
		t.Errorf("fresh session status = %d, want 200", code)
	}
	if got := metricValue(t, ts.URL, "lowutil_session_evictions_total"); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
}

// TestVetAndSlice exercises the two static endpoints end to end.
func TestVetAndSlice(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := compileSession(t, ts.URL, workSrc)
	code, body := postJSON(t, ts.URL+"/v2/vet", vetRequest{Session: id})
	if code != http.StatusOK {
		t.Fatalf("vet: %d %s", code, body)
	}
	code, body = postJSON(t, ts.URL+"/v2/slice", sliceRequest{Session: id, Mode: "rta", Top: 5})
	if code != http.StatusOK {
		t.Fatalf("slice: %d %s", code, body)
	}
	var sr reportResponse
	json.Unmarshal(body, &sr)
	if !strings.Contains(sr.Report, "static slice") {
		t.Errorf("slice report missing header: %q", sr.Report)
	}
}

// TestConcurrentAudits drives 8 concurrent audit requests at one session
// and asserts exactly one of them ran the static analysis: the other seven
// joined the memoized entry (cache-hit counter) and all eight agree on the
// rendered report byte for byte.
func TestConcurrentAudits(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInFlight: 16})
	id := compileSession(t, ts.URL, workSrc)

	const n = 8
	var wg sync.WaitGroup
	responses := make([]reportResponse, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body := postJSON(t, ts.URL+"/v2/audit", auditRequest{Session: id})
			codes[i] = code
			json.Unmarshal(body, &responses[i])
		}(i)
	}
	wg.Wait()

	hits := 0
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if responses[i].Report != responses[0].Report {
			t.Fatalf("request %d: report differs:\n%s\nvs\n%s", i, responses[i].Report, responses[0].Report)
		}
		if !strings.Contains(responses[i].Report, "static audit") {
			t.Fatalf("request %d: report missing header: %q", i, responses[i].Report)
		}
		if responses[i].CacheHit {
			hits++
		}
	}
	if hits != n-1 {
		t.Errorf("cache hits = %d, want %d (exactly one analysis)", hits, n-1)
	}
	if got := metricValue(t, ts.URL, "lowutil_audit_cache_misses_total"); got != 1 {
		t.Errorf("audit cache misses = %d, want 1", got)
	}
	if got := metricValue(t, ts.URL, "lowutil_audit_cache_hits_total"); got != n-1 {
		t.Errorf("audit cache hits = %d, want %d", got, n-1)
	}

	// A differently-keyed request runs a second analysis — and because
	// "rta" is the default mode, its report is byte-identical to the
	// memoized default-key report: the analysis is deterministic.
	code, body := postJSON(t, ts.URL+"/v2/audit", auditRequest{Session: id, Mode: "rta"})
	if code != http.StatusOK {
		t.Fatalf("explicit-mode audit: status %d: %s", code, body)
	}
	var rr reportResponse
	json.Unmarshal(body, &rr)
	if rr.CacheHit {
		t.Error("explicit-mode audit reported a cache hit for a distinct key")
	}
	if rr.Report != responses[0].Report {
		t.Errorf("re-analysis is not byte-stable:\n%s\nvs\n%s", rr.Report, responses[0].Report)
	}
	if got := metricValue(t, ts.URL, "lowutil_audit_cache_misses_total"); got != 2 {
		t.Errorf("audit cache misses = %d, want 2", got)
	}
}

// TestAuditCancellationAndDeadline covers the audit context paths: a
// client that has already gone away gets 499 and the aborted entry is
// evicted so a retry runs cleanly; an expired per-request deadline gets
// 504.
func TestAuditCancellationAndDeadline(t *testing.T) {
	s, ts := newTestServer(t, Config{RequestTimeout: time.Minute})
	id := compileSession(t, ts.URL, workSrc)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is gone before the analysis starts
	buf, _ := json.Marshal(auditRequest{Session: id})
	req := httptest.NewRequest("POST", "/v2/audit", bytes.NewReader(buf)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 499 {
		t.Errorf("canceled audit status = %d, want 499; body %s", rec.Code, rec.Body)
	}
	sess, ok := s.sessions.get(id)
	if !ok {
		t.Fatal("session vanished")
	}
	if n := sess.cachedAudits(); n != 0 {
		t.Errorf("canceled audit left %d cache entries, want 0", n)
	}

	// The same key retries cleanly after the eviction.
	code, body := postJSON(t, ts.URL+"/v2/audit", auditRequest{Session: id})
	if code != http.StatusOK {
		t.Fatalf("retry after cancel: status %d: %s", code, body)
	}
	var rr reportResponse
	json.Unmarshal(body, &rr)
	if rr.CacheHit {
		t.Error("retry after eviction reported a cache hit")
	}

	// The deadline path: an already-expired per-request timeout produces
	// 504 (the fixpoints poll the context before converging).
	_, ts2 := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	id2 := compileSession(t, ts2.URL, workSrc)
	code, body = postJSON(t, ts2.URL+"/v2/audit", auditRequest{Session: id2})
	if code != http.StatusGatewayTimeout {
		t.Errorf("deadline audit status = %d, want 504; body %s", code, body)
	}
}

// TestVetEngineAndSSA covers the vet engine selector and the SSA dump
// endpoint: both engines answer, an unknown engine 400s, and the dump
// carries SSA structure.
func TestVetEngineAndSSA(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := compileSession(t, ts.URL, workSrc)
	for _, engine := range []string{"", "ssa", "dense"} {
		code, body := postJSON(t, ts.URL+"/v2/vet", vetRequest{Session: id, Engine: engine})
		if code != http.StatusOK {
			t.Fatalf("vet engine %q: %d %s", engine, code, body)
		}
		var vr vetResponse
		json.Unmarshal(body, &vr)
		if engine != "dense" && vr.Engine != "ssa" {
			t.Errorf("engine %q echoed as %q, want ssa", engine, vr.Engine)
		}
	}
	if code, body := postJSON(t, ts.URL+"/v2/vet", vetRequest{Session: id, Engine: "nope"}); code != http.StatusBadRequest {
		t.Errorf("unknown engine: %d %s, want 400", code, body)
	}
	code, body := postJSON(t, ts.URL+"/v2/ssa", ssaRequest{Session: id})
	if code != http.StatusOK {
		t.Fatalf("ssa: %d %s", code, body)
	}
	var dr ssaResponse
	json.Unmarshal(body, &dr)
	if !strings.Contains(dr.Dump, "phi(") && !strings.Contains(dr.Dump, "blocks=") {
		t.Errorf("ssa dump lacks SSA structure: %.200q", dr.Dump)
	}
	if code, _ := postJSON(t, ts.URL+"/v2/ssa", ssaRequest{Session: id, Method: "No.such"}); code != http.StatusBadRequest {
		t.Errorf("unknown method should 400, got %d", code)
	}
}
