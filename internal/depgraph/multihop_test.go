package depgraph

import (
	"testing"
	"testing/quick"
)

// randGraph builds a graph from an edge list, marking some nodes as heap
// readers/writers, for property tests.
func randGraph(t testing.TB, n int, edges []uint16, effs []uint8) (*Graph, []*Node) {
	t.Helper()
	prog := mkProg(t, n)
	g := New(prog)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = g.Node(prog.Instrs[i], 0)
		nodes[i].SetFreq(int64(i + 1))
		if i < len(effs) {
			switch effs[i] % 4 {
			case 1:
				nodes[i].Eff = EffLoad
			case 2:
				nodes[i].Eff = EffStore
			}
		}
	}
	for _, e := range edges {
		from := int(e>>8) % n
		to := int(e&0xff) % n
		if from != to {
			g.AddDep(nodes[from], nodes[to])
		}
	}
	return g, nodes
}

// Property: HRACK with hops=1 equals HRAC, HRABK with hops=1 equals HRAB.
func TestMultiHopDegeneratesToSingleHop(t *testing.T) {
	f := func(edges []uint16, effs []uint8, seed uint8) bool {
		const n = 10
		g, nodes := randGraph(t, n, edges, effs)
		_ = g
		seedN := nodes[int(seed)%n]
		if HRACK(seedN, 1) != HRAC(seedN) {
			return false
		}
		s1, c1 := HRABK(seedN, 1)
		s2, c2 := HRAB(seedN)
		return s1 == s2 && c1 == c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: multi-hop costs are monotone non-decreasing in the hop budget.
func TestMultiHopMonotone(t *testing.T) {
	f := func(edges []uint16, effs []uint8, seed uint8) bool {
		const n = 10
		_, nodes := randGraph(t, n, edges, effs)
		seedN := nodes[int(seed)%n]
		prevC := int64(0)
		prevB := int64(0)
		for hops := 1; hops <= 4; hops++ {
			c := HRACK(seedN, hops)
			b, _ := HRABK(seedN, hops)
			if c < prevC || b < prevB {
				return false
			}
			prevC, prevB = c, b
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: with enough hops, HRACK reaches the full abstract cost.
func TestMultiHopConvergesToAbstractCost(t *testing.T) {
	f := func(edges []uint16, effs []uint8, seed uint8) bool {
		const n = 8
		_, nodes := randGraph(t, n, edges, effs)
		seedN := nodes[int(seed)%n]
		return HRACK(seedN, n+1) == AbstractCost(seedN)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Hand-checked two-hop chain: store2 ← comp2 ← load2 ← store1 ← comp1 ←
// load1. One hop sees {store2, comp2}; two hops add {load2, store1, comp1};
// three hops add load1.
func TestMultiHopChainExact(t *testing.T) {
	prog := mkProg(t, 6)
	g := New(prog)
	mk := func(i int, eff EffectKind, freq int64) *Node {
		n := g.Node(prog.Instrs[i], 0)
		n.Eff = eff
		n.SetFreq(freq)
		return n
	}
	load1 := mk(0, EffLoad, 1)
	comp1 := mk(1, EffNone, 2)
	store1 := mk(2, EffStore, 4)
	load2 := mk(3, EffLoad, 8)
	comp2 := mk(4, EffNone, 16)
	store2 := mk(5, EffStore, 32)
	g.AddDep(comp1, load1)
	g.AddDep(store1, comp1)
	g.AddDep(load2, store1)
	g.AddDep(comp2, load2)
	g.AddDep(store2, comp2)

	if got := HRACK(store2, 1); got != 32+16 {
		t.Errorf("1-hop = %d, want 48", got)
	}
	if got := HRACK(store2, 2); got != 32+16+8+4+2 {
		t.Errorf("2-hop = %d, want 62", got)
	}
	if got := HRACK(store2, 3); got != 32+16+8+4+2+1 {
		t.Errorf("3-hop = %d, want 63", got)
	}

	// Benefit from load1 forward: 1 hop stops before store1.
	if got, _ := HRABK(load1, 1); got != 1+2 {
		t.Errorf("1-hop benefit = %d, want 3", got)
	}
	if got, _ := HRABK(load1, 2); got != 1+2+4+8+16 {
		t.Errorf("2-hop benefit = %d, want 31", got)
	}
}
