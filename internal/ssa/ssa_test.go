package ssa

import (
	"testing"

	"lowutil/internal/ir"
)

// buildMain seals a program whose interesting body lives in a static method
// Main.f (params allowed — main must be parameterless) and whose main calls
// it with small constants. Returns the program and the f method.
func buildMain(t *testing.T, params int, build func(bd *ir.Builder, bb *ir.BodyBuilder)) (*ir.Program, *ir.Method) {
	t.Helper()
	bd := ir.NewBuilder()
	cls := bd.Class("Main", nil)
	target := bd.Method(cls, "f", true, params, nil)
	build(bd, bd.Body(target))
	m := bd.Method(cls, "main", true, 0, nil)
	mb := bd.Body(m)
	args := make([]int, params)
	for i := range args {
		mb.Const(i, int64(i)+1)
		args[i] = i
	}
	mb.Call(-1, target, args...)
	mb.ReturnVoid()
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		t.Fatalf("seal: %v", err)
	}
	return prog, target
}

// checkInvariants verifies the structural SSA invariants on f.
func checkInvariants(t *testing.T, f *Func) {
	t.Helper()
	m, cfg := f.M, f.CFG
	for b := 0; b < cfg.NumBlocks(); b++ {
		blk := &cfg.Blocks[b]
		reach := cfg.Reachable(b)
		for _, pv := range f.Phis[b] {
			val := &f.Vals[pv]
			if val.Kind != VPhi || val.Block != b {
				t.Fatalf("phi %d misfiled: kind=%v block=%d at b%d", pv, val.Kind, val.Block, b)
			}
			want := len(blk.Preds)
			if b == 0 {
				want++
			}
			if len(val.Args) != want {
				t.Fatalf("phi %s at b%d: %d args, want %d", f.Name(pv), b, len(val.Args), want)
			}
			for j, a := range val.Args {
				if a == None {
					// Allowed only on unreachable predecessor edges.
					if j < len(blk.Preds) && cfg.Reachable(blk.Preds[j]) {
						t.Fatalf("phi %s at b%d: arg %d is None on reachable pred b%d", f.Name(pv), b, j, blk.Preds[j])
					}
					continue
				}
				if f.Vals[a].Slot != val.Slot {
					t.Fatalf("phi %s arg %d versions slot %d, want %d", f.Name(pv), j, f.Vals[a].Slot, val.Slot)
				}
			}
		}
		for pc := blk.Start; pc < blk.End; pc++ {
			in := &m.Code[pc]
			nuses := 0
			in.Uses(func(s int, _ bool) { nuses++ })
			if !reach {
				if f.Operands[pc] != nil || f.DefOf[pc] != None {
					t.Fatalf("unreachable pc %d has SSA info", pc)
				}
				continue
			}
			if len(f.Operands[pc]) != nuses {
				t.Fatalf("pc %d: %d operands, Uses reports %d", pc, len(f.Operands[pc]), nuses)
			}
			i := 0
			in.Uses(func(s int, _ bool) {
				v := f.Operands[pc][i]
				if f.Vals[v].Slot != s {
					t.Fatalf("pc %d operand %d: value %s versions slot %d, want %d", pc, i, f.Name(v), f.Vals[v].Slot, s)
				}
				i++
			})
			if d := in.Def(); d >= 0 {
				v := f.DefOf[pc]
				if v == None || f.Vals[v].Kind != VInstr || f.Vals[v].PC != pc || f.Vals[v].Slot != d {
					t.Fatalf("pc %d: bad def value", pc)
				}
			} else if f.DefOf[pc] != None {
				t.Fatalf("pc %d: def value for def-less instruction", pc)
			}
		}
	}
	// Use lists round-trip: every recorded use actually references the value.
	for v := 0; v < f.NumVals(); v++ {
		for _, u := range f.Uses(ValID(v)) {
			if u.IsPhi() {
				if f.Vals[u.Phi].Args[u.ArgIdx] != ValID(v) {
					t.Fatalf("use list of %s: phi arg mismatch", f.Name(ValID(v)))
				}
			} else if f.Operands[u.PC][u.OpIdx] != ValID(v) {
				t.Fatalf("use list of %s: operand mismatch at pc %d", f.Name(ValID(v)), u.PC)
			}
		}
	}
}

// TestBuildDiamond checks phi placement at a simple if/else join.
func TestBuildDiamond(t *testing.T) {
	// v0 = param; if v0 > 0 { v1 = 1 } else { v1 = 2 }; print v1
	_, m := buildMain(t, 1, func(_ *ir.Builder, bb *ir.BodyBuilder) {
		bb.Const(2, 0)
		ifPC := bb.If(0, ir.Gt, 2, 0)
		bb.Const(1, 2)
		g := bb.Goto(0)
		bb.Patch(ifPC, bb.PC())
		bb.Const(1, 1)
		bb.Patch(g, bb.PC())
		bb.Native(-1, ir.NativePrint, 1)
		bb.ReturnVoid()
	})
	f := Build(m, nil)
	checkInvariants(t, f)
	join := f.CFG.BlockOf[len(m.Code)-2]
	var phis []ValID
	for _, pv := range f.Phis[join] {
		phis = append(phis, pv)
	}
	if len(phis) != 1 || f.Vals[phis[0]].Slot != 1 {
		t.Fatalf("want one phi for slot 1 at join, got %d phis", len(phis))
	}
	if f.NumPhis != 1 {
		t.Fatalf("NumPhis = %d, want 1 (pruned SSA must not place dead phis)", f.NumPhis)
	}
}

// TestBuildLoopPhi checks that a counted loop gets a header phi for the
// induction variable and that the back-edge argument is the incremented
// value.
func TestBuildLoopPhi(t *testing.T) {
	_, m := buildMain(t, 0, func(_ *ir.Builder, bb *ir.BodyBuilder) {
		bb.Const(0, 0)  // i = 0
		bb.Const(1, 10) // n = 10
		head := bb.PC()
		exit := bb.If(0, ir.Ge, 1, 0) // if i >= n goto end
		bb.Const(2, 1)
		bb.Bin(0, ir.Add, 0, 2) // i = i + 1
		bb.Goto(head)
		bb.Patch(exit, bb.PC())
		bb.Native(-1, ir.NativePrint, 0)
		bb.ReturnVoid()
	})
	f := Build(m, nil)
	checkInvariants(t, f)
	head := f.CFG.BlockOf[2]
	var iPhi ValID = None
	for _, pv := range f.Phis[head] {
		if f.Vals[pv].Slot == 0 {
			iPhi = pv
		}
	}
	if iPhi == None {
		t.Fatal("no phi for the induction variable at the loop header")
	}
	sawInstr := false
	for _, a := range f.Vals[iPhi].Args {
		if a != None && f.Vals[a].Kind == VInstr {
			sawInstr = true
		}
	}
	if !sawInstr {
		t.Fatal("induction phi has no back-edge argument from the increment")
	}
}

// TestBuildEntryLoop exercises the virtual function-entry edge: a method
// whose entry block is also a loop header (the latch jumps to pc 0).
func TestBuildEntryLoop(t *testing.T) {
	_, m := buildMain(t, 1, func(_ *ir.Builder, bb *ir.BodyBuilder) {
		// while v0 > 0 { v0 = v0 - 1 }; print v0
		bb.Const(1, 0)
		exit := bb.If(0, ir.Le, 1, 0)
		bb.Const(2, 1)
		bb.Bin(0, ir.Sub, 0, 2)
		bb.Goto(0)
		bb.Patch(exit, bb.PC())
		bb.Native(-1, ir.NativePrint, 0)
		bb.ReturnVoid()
	})
	f := Build(m, nil)
	checkInvariants(t, f)
	if len(f.CFG.Blocks[0].Preds) == 0 {
		t.Fatal("test premise broken: entry block has no predecessors")
	}
	var v0Phi ValID = None
	for _, pv := range f.Phis[0] {
		if f.Vals[pv].Slot == 0 {
			v0Phi = pv
		}
	}
	if v0Phi == None {
		t.Fatal("no entry phi for the looping parameter")
	}
	args := f.Vals[v0Phi].Args
	entryArg := args[len(args)-1]
	if entryArg == None || f.Vals[entryArg].Kind != VParam {
		t.Fatalf("virtual entry argument should be the parameter value, got %v", entryArg)
	}
}

// TestBuildAllWorkloads builds SSA for every method of every workload and
// checks the invariants — the broad-coverage construction test.
func TestBuildAllWorkloads(t *testing.T) {
	forEachWorkload(t, func(t *testing.T, prog *ir.Program) {
		for _, c := range prog.Classes {
			for _, m := range c.Methods {
				checkInvariants(t, Build(m, nil))
			}
		}
	})
}
