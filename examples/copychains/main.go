// Copychains demonstrates the extended copy profiling client (Figure 2(c)
// of the paper): values that move between heap locations without any
// computation form copy chains; the analysis recovers them including the
// intermediate stack locations, exposing tradesoap-style conversion layers.
//
// Run with: go run ./examples/copychains
package main

import (
	"fmt"
	"log"

	"lowutil"
)

const src = `
class QuoteBean { int symbol; int price; }
class WireQuote { int symbol; int price; }
class Soap {
  WireQuote toWire(QuoteBean q) {
    WireQuote w = new WireQuote();
    w.symbol = q.symbol;       // pure copies, field to field
    w.price = q.price;
    return w;
  }
  QuoteBean fromWire(WireQuote w) {
    QuoteBean q = new QuoteBean();
    q.symbol = w.symbol;
    q.price = w.price;
    return q;
  }
}
class Main {
  static void main() {
    Soap soap = new Soap();
    int acc = 0;
    for (int i = 0; i < 200; i = i + 1) {
      QuoteBean q = new QuoteBean();
      q.symbol = i;
      q.price = hash(i) % 10000;
      QuoteBean back = soap.fromWire(soap.toWire(q));
      acc = acc + back.price;
    }
    print(acc);
  }
}`

func main() {
	prog, err := lowutil.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	chains, total, err := prog.CopyChains(8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total dynamic copies: %d\n", total)
	fmt.Println("hottest heap-to-heap copy chains (src -> dst, count, stack hops):")
	for _, c := range chains {
		fmt.Printf("  %-12s -> %-12s ×%-5d (%d stack hops)\n", c.Src, c.Dst, c.Count, c.StackHops)
	}
	fmt.Println("\nthe bean/wire ping-pong shows up as symmetric chains between the")
	fmt.Println("two representations — the tradesoap pattern from the paper's case study")
}
