// Casestudy runs one of the paper's §4.2 case studies end to end through
// the public API: execute the bloated and the optimized variant, compare
// work and allocations, and show where the tool ranked the planted
// structure.
//
// Run with: go run ./examples/casestudy [name]   (default: eclipse)
package main

import (
	"fmt"
	"log"
	"os"

	"lowutil"
)

func main() {
	name := "eclipse"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	res, err := lowutil.RunCaseStudy(name, 2, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("case study %s\n", name)
	fmt.Printf("  bloated:   %10d work units, %7d allocations\n", res.BloatedWork, res.BloatedAllocs)
	fmt.Printf("  optimized: %10d work units, %7d allocations\n", res.OptimizedWork, res.OptimizedAllocs)
	fmt.Printf("  reduction: %.1f%% work, %.1f%% allocations\n",
		100*res.WorkReduction, 100*res.AllocReduction)
	fmt.Printf("  planted structure ranked #%d by the cost-benefit report:\n\n", res.SuspectRank)
	fmt.Println(res.TopReport)
}
