package par

import "context"

// Gate is a context-aware counting semaphore bounding in-flight work. The
// profiling server uses it for admission control: each request acquires a
// slot before doing CPU-bound work and releases it when done, so a burst
// of requests degrades into an orderly queue instead of a thundering herd
// of interpreter runs.
type Gate struct {
	slots chan struct{}
}

// NewGate returns a gate admitting at most n concurrent holders. n <= 0 is
// treated as 1.
func NewGate(n int) *Gate {
	if n <= 0 {
		n = 1
	}
	return &Gate{slots: make(chan struct{}, n)}
}

// Acquire blocks until a slot is free or ctx is done, and reports which:
// nil means the caller holds a slot and must Release it; otherwise the
// context error is returned and no slot is held.
func (g *Gate) Acquire(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire takes a slot without blocking and reports whether it got one.
func (g *Gate) TryAcquire() bool {
	select {
	case g.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release frees a slot taken by Acquire or TryAcquire.
func (g *Gate) Release() { <-g.slots }

// InFlight returns the number of currently held slots.
func (g *Gate) InFlight() int { return len(g.slots) }

// Cap returns the gate's capacity.
func (g *Gate) Cap() int { return cap(g.slots) }
