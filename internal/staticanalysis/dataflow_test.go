package staticanalysis

import (
	"testing"

	"lowutil/internal/ir"
)

func TestBitSetOps(t *testing.T) {
	b := NewBitSet(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Has(0) || !b.Has(64) || !b.Has(129) || b.Has(1) {
		t.Fatal("Set/Has broken")
	}
	b.Clear(64)
	if b.Has(64) {
		t.Fatal("Clear broken")
	}
	o := NewBitSet(130)
	o.Set(5)
	b.UnionWith(o)
	if !b.Has(5) || !b.Has(0) {
		t.Fatal("UnionWith broken")
	}
	b.IntersectWith(o)
	if b.Has(0) || !b.Has(5) {
		t.Fatal("IntersectWith broken")
	}
	b.AndNot(o)
	if b.Has(5) {
		t.Fatal("AndNot broken")
	}
	f := NewBitSet(70)
	f.Fill(70)
	for i := 0; i < 70; i++ {
		if !f.Has(i) {
			t.Fatalf("Fill missed bit %d", i)
		}
	}
	var got []int
	f2 := NewBitSet(130)
	f2.Set(3)
	f2.Set(127)
	f2.Range(func(i int) { got = append(got, i) })
	if len(got) != 2 || got[0] != 3 || got[1] != 127 {
		t.Fatalf("Range = %v, want [3 127]", got)
	}
}

// buildDiamond constructs
//
//	B0: v0 = 1; if v0 == v0 goto B2
//	B1: v1 = 10; goto B3
//	B2: v1 = 20
//	B3: v2 = v1; return
//
// and returns the sealed program plus the method.
func buildDiamond(t *testing.T) *ir.Method {
	t.Helper()
	b := ir.NewBuilder()
	cls := b.Class("Main", nil)
	m := b.Method(cls, "main", true, 0, nil)
	mb := b.Body(m)
	mb.Const(0, 1)                // pc0
	ifpc := mb.If(0, ir.Eq, 0, 0) // pc1, patched to else
	mb.Const(1, 10)               // pc2
	g := mb.Goto(0)               // pc3, patched to join
	elsePC := mb.PC()
	mb.Const(1, 20) // pc4
	join := mb.PC()
	mb.Move(2, 1)   // pc5
	mb.ReturnVoid() // pc6
	mb.Patch(ifpc, elsePC)
	mb.Patch(g, join)
	if _, err := b.Seal("Main", "main"); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDominatorsDiamond(t *testing.T) {
	m := buildDiamond(t)
	cfg := ir.NewCFG(m)
	if cfg.NumBlocks() != 4 {
		t.Fatalf("blocks = %d, want 4", cfg.NumBlocks())
	}
	idom := Dominators(cfg)
	// Entry dominates everything; neither arm dominates the join.
	for b := 1; b < 4; b++ {
		if idom[b] != 0 {
			t.Errorf("idom[%d] = %d, want 0", b, idom[b])
		}
	}
	if !Dominates(idom, 0, 3) {
		t.Error("entry must dominate the join")
	}
	if Dominates(idom, 1, 3) || Dominates(idom, 2, 3) {
		t.Error("no single arm may dominate the join")
	}
	if !Dominates(idom, 3, 3) {
		t.Error("dominance must be reflexive")
	}
}

func TestLivenessDiamond(t *testing.T) {
	m := buildDiamond(t)
	lv := NewLiveness(m, nil)
	join := lv.CFG.BlockOf[5]
	if !lv.LiveIn(join).Has(1) {
		t.Error("v1 must be live into the join (the move reads it)")
	}
	if lv.LiveIn(join).Has(2) {
		t.Error("v2 is never read; it must not be live anywhere")
	}
	// Both arms kill v1 before any use, so nothing is live into them.
	thenB := lv.CFG.BlockOf[2]
	if lv.LiveIn(thenB).Has(1) {
		t.Error("v1 must not be live into the then-arm (killed before use)")
	}
	// Immediately after the then-arm's const, v1 is live (flows to the join).
	if !lv.LiveOutAt(2).Has(1) {
		t.Error("v1 must be live immediately after pc2")
	}
	if lv.LiveOutAt(5).Has(1) {
		t.Error("v1 must be dead after its last read at pc5")
	}
}

func TestReachingDefsDiamond(t *testing.T) {
	m := buildDiamond(t)
	rd := NewReachingDefs(m, nil)
	join := rd.CFG.BlockOf[5]
	in := rd.ReachIn(join)
	if !in.Has(2) || !in.Has(4) {
		t.Error("both arm definitions of v1 must reach the join")
	}
	du := rd.DefUse()
	wantUse := func(d int) {
		t.Helper()
		if len(du[d]) != 1 || du[d][0].PC != 5 || du[d][0].Base {
			t.Errorf("uses of def %d = %v, want [{5 false}]", d, du[d])
		}
	}
	wantUse(2)
	wantUse(4)
	if len(du[5]) != 0 {
		t.Errorf("v2's def must have no uses, got %v", du[5])
	}
}

func TestDefUseParamsAndBaseFlag(t *testing.T) {
	b := ir.NewBuilder()
	cls := b.Class("Main", nil)
	fv := b.Field(cls, "v", ir.IntType)
	m := b.Method(cls, "get", true, 1, ir.IntType)
	mb := b.Body(m)
	mb.LoadField(1, 0, fv) // pc0: v1 = v0.v  (v0 is a base-pointer read)
	mb.Return(1)           // pc1
	mn := b.Method(cls, "main", true, 0, nil)
	b.Body(mn).ReturnVoid()
	if _, err := b.Seal("Main", "main"); err != nil {
		t.Fatal(err)
	}

	rd := NewReachingDefs(m, nil)
	du := rd.DefUse()
	pd := rd.ParamDef(0)
	if !rd.IsParamDef(pd) || rd.IsParamDef(0) {
		t.Fatal("IsParamDef misclassifies")
	}
	if len(du[pd]) != 1 || du[pd][0].PC != 0 || !du[pd][0].Base {
		t.Errorf("param use = %v, want one base use at pc0", du[pd])
	}
	if len(du[0]) != 1 || du[0][0].PC != 1 || du[0][0].Base {
		t.Errorf("load use = %v, want one value use at pc1", du[0])
	}
}

func TestSolveLeavesUnreachableAtBottom(t *testing.T) {
	b := ir.NewBuilder()
	cls := b.Class("Main", nil)
	m := b.Method(cls, "main", true, 0, nil)
	mb := b.Body(m)
	g := mb.Goto(0)
	mb.Const(0, 7) // unreachable block
	l := mb.PC()
	mb.ReturnVoid()
	mb.Patch(g, l)
	if _, err := b.Seal("Main", "main"); err != nil {
		t.Fatal(err)
	}
	cfg := ir.NewCFG(m)
	dead := cfg.BlockOf[1]
	if cfg.Reachable(dead) {
		t.Fatal("pc1's block should be unreachable")
	}
	rd := NewReachingDefs(m, cfg)
	if in := rd.ReachIn(dead); in.Has(1) {
		t.Error("unreachable block must stay at the bottom element")
	}
	idom := Dominators(cfg)
	if idom[dead] != -1 {
		t.Errorf("idom of unreachable block = %d, want -1", idom[dead])
	}
}
