package jobs

import (
	"container/list"
	"sync"
)

// store is the content-addressed result cache: completed results keyed by
// Spec.Hash, bounded by an LRU — the same discipline as the server's
// session cache. A resubmitted spec whose result is still resident
// completes instantly; an evicted entry just means the work runs again.
type store struct {
	mu  sync.Mutex
	max int
	m   map[string]*list.Element
	lru *list.List // front = most recently used
}

type storeEntry struct {
	key string
	res *Result
}

func newStore(max int) *store {
	if max <= 0 {
		max = 256
	}
	return &store{max: max, m: make(map[string]*list.Element), lru: list.New()}
}

// get returns the cached result for key, refreshing its LRU position.
func (c *store) get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*storeEntry).res, true
}

// put inserts res for key, evicting the least recently used entries over
// the bound. It reports how many entries were evicted.
func (c *store) put(key string, res *Result) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.lru.MoveToFront(el)
		el.Value.(*storeEntry).res = res
		return 0
	}
	c.m[key] = c.lru.PushFront(&storeEntry{key: key, res: res})
	evicted := 0
	for c.lru.Len() > c.max {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.m, back.Value.(*storeEntry).key)
		evicted++
	}
	return evicted
}

// evict drops the entry for key and reports whether one existed. Tests use
// it to force the evicted-entry recovery path.
func (c *store) evict(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return false
	}
	c.lru.Remove(el)
	delete(c.m, key)
	return true
}

// len returns the number of resident results.
func (c *store) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
