package workloads

import "fmt"

func init() {
	register(&Workload{
		Name:    "lusearch",
		Profile: "query scoring over an index; scores feed ranking predicates (high IPP)",
		Source: func(scale int) string {
			return fmt.Sprintf(`
// lusearch-alike: queries score documents; most arithmetic exists to be
// compared against the current top-k threshold.
class Scorer {
  int[] docScores;
  int topDoc;
  int topScore;
  void init(int docs) { this.docScores = new int[docs]; }
  void score(int term, int weight) {
    for (int d = 0; d < this.docScores.length; d = d + 1) {
      int tf = hash(term * 131 + d) %% 8;
      if (tf < 0) { tf = -tf; }
      int s = this.docScores[d] + tf * weight;
      this.docScores[d] = s;
      if (s > this.topScore) {
        this.topScore = s;
        this.topDoc = d;
      }
    }
  }
}
class Main {
  static void main() {
    int queries = %d;
    int docs = 50;
    int best = 0;
    for (int q = 0; q < queries; q = q + 1) {
      Scorer sc = new Scorer();
      sc.init(docs);
      for (int t = 0; t < 4; t = t + 1) {
        sc.score(q * 4 + t, t + 1);
      }
      best = best + sc.topDoc;
    }
    print(best);
  }
}`, 15*scale)
		},
	})

	register(&Workload{
		Name:    "eclipse",
		Profile: "visitor objects per traversal + hashtable rehash recomputing entry hashes (high IPD)",
		Source: func(scale int) string {
			return fmt.Sprintf(`
// eclipse-alike: workspace traversals allocate stateless visitor and
// iterator objects, and HashtableOfArrayToObject recomputes element hashes
// on every rehash.
class Resource {
  int id;
  Resource[] children;
  int nChildren;
}
class Visitor {
  int visited;
  boolean visit(Resource r) { this.visited = this.visited + 1; return true; }
}
class IterFrame { Resource res; int idx; IterFrame below; }
class TreeIterator {                 // general stack-based iterator used
  IterFrame top;                     // for a plain tree (over-general)
  void init(Resource root) {
    IterFrame f = new IterFrame();
    f.res = root;
    f.idx = 0;
    this.top = f;
  }
  Resource next() {
    while (this.top != null) {
      IterFrame f = this.top;
      if (f.idx == 0) {
        f.idx = 1;
        if (f.res.nChildren > 0) {
          int i = f.res.nChildren - 1;
          while (i >= 0) {
            IterFrame nf = new IterFrame();
            nf.res = f.res.children[i];
            nf.idx = 0;
            nf.below = this.top;
            this.top = nf;
            i = i - 1;
          }
        }
        return f.res;
      }
      this.top = f.below;
    }
    return null;
  }
}
class HashtableOfArray {
  int[][] keys;
  int[] values;
  int size;
  void init(int cap) {
    this.keys = new int[cap][];
    this.values = new int[cap];
    this.size = 0;
  }
  int hashKey(int[] key) {           // expensive: touches every element
    int h = 17;
    for (int i = 0; i < key.length; i = i + 1) { h = h * 31 + key[i]; }
    return h;
  }
  void put(int[] key, int value) {
    if (this.size * 2 >= this.keys.length) { this.rehash(); }
    int h = this.hashKey(key) %% this.keys.length;
    if (h < 0) { h = -h; }
    while (this.keys[h] != null) { h = (h + 1) %% this.keys.length; }
    this.keys[h] = key;
    this.values[h] = value;
    this.size = this.size + 1;
  }
  void rehash() {                    // recomputes every key hash
    int[][] oldKeys = this.keys;
    int[] oldVals = this.values;
    this.keys = new int[oldKeys.length * 2][];
    this.values = new int[oldKeys.length * 2];
    this.size = 0;
    for (int i = 0; i < oldKeys.length; i = i + 1) {
      if (oldKeys[i] != null) { this.put(oldKeys[i], oldVals[i]); }
    }
  }
}
class WorkspaceGen {
  Resource gen(int depth, int seed) {
    Resource r = new Resource();
    r.id = seed;
    int fan = 0;
    if (depth > 0) { fan = 3; }
    r.children = new Resource[fan];
    r.nChildren = fan;
    for (int i = 0; i < fan; i = i + 1) {
      r.children[i] = this.gen(depth - 1, seed * 4 + i + 1);
    }
    return r;
  }
}
class Main {
  static void main() {
    int traversals = %d;
    WorkspaceGen g = new WorkspaceGen();
    Resource root = g.gen(4, 1);
    int visits = 0;
    for (int t = 0; t < traversals; t = t + 1) {
      Visitor v = new Visitor();          // fresh stateless visitor
      TreeIterator it = new TreeIterator(); // fresh iterator machinery
      it.init(root);
      Resource r = it.next();
      while (r != null) {
        boolean more = v.visit(r);
        if (!more) { break; }
        r = it.next();
      }
      visits = visits + v.visited;
    }
    HashtableOfArray ht = new HashtableOfArray();
    ht.init(8);
    for (int k = 0; k < traversals * 4; k = k + 1) {
      int[] key = new int[6];
      for (int i = 0; i < 6; i = i + 1) { key[i] = hash(k * 6 + i); }
      ht.put(key, k);
    }
    print(visits);
    print(ht.size);
  }
}`, 8*scale)
		},
	})

	register(&Workload{
		Name:    "avrora",
		Profile: "microcontroller simulation; register values feed subsequent instructions",
		Source: func(scale int) string {
			return fmt.Sprintf(`
// avrora-alike: an AVR-ish core stepping through flash; register state is
// continuously consumed.
class Core {
  int[] regs;
  int pc;
  int cycles;
  void init() { this.regs = new int[16]; this.pc = 0; this.cycles = 0; }
  void step(int[] flash) {
    int insn = flash[this.pc %% flash.length];
    int op = insn & 3;
    int rd = (insn >> 2) & 15;
    int rr = (insn >> 6) & 15;
    if (op == 0) { this.regs[rd] = this.regs[rd] + this.regs[rr]; }
    else if (op == 1) { this.regs[rd] = this.regs[rd] ^ this.regs[rr]; }
    else if (op == 2) { this.regs[rd] = insn >> 6; }
    else {
      if (this.regs[rd] != 0) { this.pc = this.pc + ((insn >> 10) & 63); }
    }
    this.pc = (this.pc + 1) & 8191;      // program counter stays bounded
    this.cycles = this.cycles + 1;
  }
}
class Main {
  static void main() {
    int steps = %d;
    int[] flash = new int[256];
    for (int i = 0; i < flash.length; i = i + 1) { flash[i] = hash(i * 97); }
    Core c = new Core();
    c.init();
    for (int i = 0; i < steps; i = i + 1) { c.step(flash); }
    int sum = 0;
    for (int r = 0; r < 16; r = r + 1) { sum = sum + c.regs[r]; }
    print(sum);
    print(c.cycles);
  }
}`, 800*scale)
		},
	})

	register(&Workload{
		Name:    "batik",
		Profile: "per-operation geometry clones whose originals are discarded",
		Source: func(scale int) string {
			return fmt.Sprintf(`
// batik-alike: path transforms clone point objects per operation instead of
// mutating in place.
class Pt { int x; int y; }
class Transform {
  Pt translate(Pt p, int dx, int dy) {
    Pt q = new Pt();           // clone per op
    q.x = p.x + dx;
    q.y = p.y + dy;
    return q;
  }
  Pt scale(Pt p, int f) {
    Pt q = new Pt();
    q.x = p.x * f;
    q.y = p.y * f;
    return q;
  }
  Pt rotate90(Pt p) {
    Pt q = new Pt();
    q.x = -p.y;
    q.y = p.x;
    return q;
  }
}
class Main {
  static void main() {
    int paths = %d;
    Transform t = new Transform();
    int checksum = 0;
    for (int i = 0; i < paths; i = i + 1) {
      Pt p = new Pt();
      p.x = i %% 100;
      p.y = (i * 7) %% 100;
      for (int s = 0; s < 12; s = s + 1) {
        p = t.translate(p, 3, 4);
        p = t.scale(p, 2);
        p = t.rotate90(p);
        p = t.translate(p, -1, -1);
      }
      checksum = checksum + (p.x ^ p.y);
    }
    print(checksum);
  }
}`, 25*scale)
		},
	})

	register(&Workload{
		Name:    "derby",
		Profile: "container metadata array rewritten on every page write; id keys re-derived per access",
		Source: func(scale int) string {
			return fmt.Sprintf(`
// derby-alike: FileContainer keeps an info array that is regenerated on
// every page write although only checkpoints read it, and context lookups
// re-derive composite keys each time.
class FileContainer {
  int[] info;
  int pages;
  void init() { this.info = new int[8]; this.pages = 0; }
  void writePage(int pageNo, int data) {
    // the bloat: rebuild container metadata on every write
    this.info[0] = this.pages;
    this.info[1] = pageNo;
    this.info[2] = hash(pageNo) %% 4096;
    this.info[3] = data & 255;
    this.info[4] = this.info[0] + this.info[1];
    this.info[5] = hash(data) %% 4096;
    this.info[6] = 2;
    this.info[7] = 1;
    this.pages = this.pages + 1;
  }
  int checkpoint() {
    int s = 0;
    for (int i = 0; i < this.info.length; i = i + 1) { s = s + this.info[i]; }
    return s;
  }
}
class ContextMap {
  int[] keys;
  int[] vals;
  int size;
  void init(int cap) { this.keys = new int[cap]; this.vals = new int[cap]; this.size = 0; }
  int keyOf(int mgr, int kind) {      // re-derived composite "string" key
    int k = 17;
    k = k * 31 + mgr;
    k = k * 31 + kind;
    k = k * 31 + hash(mgr * 7 + kind);
    return k;
  }
  void put(int mgr, int kind, int v) {
    int k = this.keyOf(mgr, kind);
    for (int i = 0; i < this.size; i = i + 1) {
      if (this.keys[i] == k) { this.vals[i] = v; return; }
    }
    this.keys[this.size] = k;
    this.vals[this.size] = v;
    this.size = this.size + 1;
  }
  int get(int mgr, int kind) {
    int k = this.keyOf(mgr, kind);
    for (int i = 0; i < this.size; i = i + 1) {
      if (this.keys[i] == k) { return this.vals[i]; }
    }
    return -1;
  }
}
class Main {
  static void main() {
    int writes = %d;
    FileContainer fc = new FileContainer();
    fc.init();
    ContextMap cm = new ContextMap();
    cm.init(32);
    int acc = 0;
    for (int i = 0; i < writes; i = i + 1) {
      fc.writePage(i, hash(i));
      cm.put(i %% 8, i %% 3, i);
      acc = acc + cm.get(i %% 8, (i + 1) %% 3);
    }
    print(fc.checkpoint());      // the single metadata read
    print(acc);
  }
}`, 60*scale)
		},
	})

	register(&Workload{
		Name:    "sunflow",
		Profile: "vector clones per arithmetic op + float↔int bit round-trips (high IPD)",
		Source: func(scale int) string {
			return fmt.Sprintf(`
// sunflow-alike: every vector op starts by cloning, and shading values are
// packed into an int slot array and unpacked right back.
class Vec {
  int x; int y; int z;
  Vec add(Vec o) {
    Vec r = this.cloneV();
    r.x = r.x + o.x; r.y = r.y + o.y; r.z = r.z + o.z;
    return r;
  }
  Vec mul(int f) {
    Vec r = this.cloneV();
    r.x = r.x * f; r.y = r.y * f; r.z = r.z * f;
    return r;
  }
  Vec cloneV() {
    Vec r = new Vec();
    r.x = this.x; r.y = this.y; r.z = this.z;
    return r;
  }
  int dot(Vec o) { return this.x * o.x + this.y * o.y + this.z * o.z; }
}
class Shader {
  int[] slots;      // int array holding packed "float" values
  void init(int n) { this.slots = new int[n]; }
  void store(int i, int v) { this.slots[i] = floatToIntBits(v); }
  int load(int i) { return intBitsToFloat(this.slots[i]); }
}
class Main {
  static void main() {
    int rays = %d;
    Shader sh = new Shader();
    sh.init(16);
    int lum = 0;
    for (int r = 0; r < rays; r = r + 1) {
      Vec dir = new Vec();
      dir.x = hash(r) %% 32; dir.y = hash(r + 1) %% 32; dir.z = hash(r + 2) %% 32;
      Vec n = new Vec();
      n.x = 1; n.y = 2; n.z = 3;
      Vec h = dir.add(n).mul(2).add(dir).mul(3);   // clone chains
      int shade = h.dot(n);
      sh.store(r %% 16, shade);                     // pack
      lum = lum + sh.load(r %% 16);                 // immediately unpack
    }
    print(lum);
  }
}`, 60*scale)
		},
	})

	register(&Workload{
		Name:    "tomcat",
		Profile: "mapper context array rebuilt per registration; per-request type-name comparisons",
		Source: func(scale int) string {
			return fmt.Sprintf(`
// tomcat-alike: util.Mapper reallocates and copies the sorted context array
// on every add/remove, and getProperty compares type tags the slow way.
class Mapper {
  int[] contexts;
  void init() { this.contexts = new int[0]; }
  void addContext(int c) {
    int[] neu = new int[this.contexts.length + 1];  // fresh array per add
    int i = 0;
    while (i < this.contexts.length && this.contexts[i] < c) {
      neu[i] = this.contexts[i];
      i = i + 1;
    }
    neu[i] = c;
    while (i < this.contexts.length) {
      neu[i + 1] = this.contexts[i];
      i = i + 1;
    }
    this.contexts = neu;
  }
  int map(int host) {
    int lo = 0;
    int hi = this.contexts.length - 1;
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      if (this.contexts[mid] < host) { lo = mid + 1; } else { hi = mid; }
    }
    if (this.contexts.length == 0) { return -1; }
    return this.contexts[lo];
  }
}
class PropertySource {
  int typeNameOf(int kind) {          // models Class.getName()
    return hash(kind * 77) & 1023;
  }
  int getProperty(int key, int kind) {
    // slow path: derive and compare type names per request
    int intName = this.typeNameOf(0);
    int boolName = this.typeNameOf(1);
    int longName = this.typeNameOf(2);
    int name = this.typeNameOf(kind);
    if (name == intName) { return key * 2; }
    if (name == boolName) { return key & 1; }
    if (name == longName) { return key * 4; }
    return key;
  }
}
class Main {
  static void main() {
    int requests = %d;
    Mapper m = new Mapper();
    m.init();
    PropertySource ps = new PropertySource();
    int acc = 0;
    for (int i = 0; i < requests; i = i + 1) {
      if (i %% 10 == 0) { m.addContext(i); }
      acc = acc + m.map(i %% 97);
      acc = acc + ps.getProperty(i, i %% 3);
    }
    print(acc);
  }
}`, 50*scale)
		},
	})

	register(&Workload{
		Name:    "tradebeans",
		Profile: "ID wrapper objects + redundant database round-trips per key request",
		Source: func(scale int) string {
			return fmt.Sprintf(`
// tradebeans-alike: KeyBlock wraps plain integer ranges in objects and
// refreshes itself with database queries on every request.
class KeyBlockIter {
  KeyBlock owner;
  int cursor;
  boolean hasNext() { return this.cursor < this.owner.hi; }
  int next() {
    int v = this.cursor;
    this.cursor = this.cursor + 1;
    return v;
  }
}
class KeyBlock {
  int lo;
  int hi;
  int account;
  void refresh() {
    // redundant round-trips: two queries and an update per request
    int a = dbQuery(this.account, this.lo);
    int b = dbQuery(this.account, this.hi);
    int unused = a ^ b;                    // result ignored
    this.account = this.account;           // "update"
    if (unused == -1) { print(unused); }   // never fires
  }
  KeyBlockIter iterator() {
    KeyBlockIter it = new KeyBlockIter();
    it.owner = this;
    it.cursor = this.lo;
    return it;
  }
}
class AccountService {
  int nextId;
  int allocate(int n) {
    KeyBlock kb = new KeyBlock();
    kb.lo = this.nextId;
    kb.hi = this.nextId + n;
    kb.account = 7;
    kb.refresh();
    this.nextId = this.nextId + n;
    KeyBlockIter it = kb.iterator();
    int last = 0;
    while (it.hasNext()) { last = it.next(); }
    return last;
  }
}
class Main {
  static void main() {
    int orders = %d;
    AccountService svc = new AccountService();
    int acc = 0;
    for (int i = 0; i < orders; i = i + 1) {
      acc = acc + svc.allocate(10);
    }
    print(acc);
  }
}`, 25*scale)
		},
	})

	register(&Workload{
		Name:    "tradesoap",
		Profile: "bean conversions copying the same data between representations (convertXBean)",
		Source: func(scale int) string {
			return fmt.Sprintf(`
// tradesoap-alike: the SOAP path converts each bean through wire and back,
// copying every field twice per hop.
class QuoteBean { int symbol; int price; int volume; int low; int high; }
class WireQuote { int symbol; int price; int volume; int low; int high; }
class SoapLayer {
  WireQuote toWire(QuoteBean q) {
    WireQuote w = new WireQuote();
    w.symbol = q.symbol;
    w.price = q.price;
    w.volume = q.volume;
    w.low = q.low;
    w.high = q.high;
    return w;
  }
  QuoteBean fromWire(WireQuote w) {
    QuoteBean q = new QuoteBean();
    q.symbol = w.symbol;
    q.price = w.price;
    q.volume = w.volume;
    q.low = w.low;
    q.high = w.high;
    return q;
  }
}
class Main {
  static void main() {
    int calls = %d;
    SoapLayer soap = new SoapLayer();
    int acc = 0;
    for (int i = 0; i < calls; i = i + 1) {
      QuoteBean q = new QuoteBean();
      q.symbol = i %% 500;
      q.price = hash(i) %% 10000;
      q.volume = hash(i + 1) %% 1000;
      q.low = q.price - 5;
      q.high = q.price + 5;
      WireQuote w = soap.toWire(q);         // copy out
      QuoteBean back = soap.fromWire(w);    // copy back
      int res = dbQuery(back.symbol, back.price);
      acc = acc + (res & 15) + back.volume;
    }
    print(acc);
  }
}`, 40*scale)
		},
	})
}
