package jobs

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"lowutil"
	"lowutil/internal/workloads"
)

// profileExec compiles and profiles a spec through the public facade — the
// same execution path the server's job executor takes, minus the session
// cache (the queue's own result store provides the reuse here).
var profileExec = ExecutorFunc(func(ctx context.Context, spec Spec) (*Result, error) {
	prog, err := lowutil.Compile(spec.Source)
	if err != nil {
		return nil, err
	}
	prof, err := prog.ProfileContext(ctx, lowutil.WithSlots(spec.Slots))
	if err != nil {
		return nil, err
	}
	payload, err := json.Marshal(map[string]any{"report": prof.Report(10)})
	if err != nil {
		return nil, err
	}
	return &Result{Kind: spec.Kind, Payload: payload}, nil
})

// BenchmarkJobThroughput pushes all 18 Table 1 workloads through the queue
// per iteration: one batch, profile specs, four workers. Each iteration
// uses a fresh idempotency key and a cold result store, so the number is
// end-to-end queue + compile + profile throughput.
func BenchmarkJobThroughput(b *testing.B) {
	all := workloads.All()
	for i := 0; i < b.N; i++ {
		q := New(Config{Executor: profileExec, Shards: 4, Workers: 4})
		reqs := make([]Request, len(all))
		for k, w := range all {
			reqs[k] = Request{Spec: Spec{Kind: KindProfile, Source: w.Source(1), Slots: lowutil.DefaultSlots}}
		}
		_, subs, err := q.Submit(fmt.Sprintf("bench-%d", i), reqs)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range subs {
			if err := q.Events(context.Background(), s.ID, 0, func(Event) error { return nil }); err != nil {
				b.Fatal(err)
			}
			st, _ := q.Status(s.ID)
			if st.State != StateDone {
				b.Fatalf("job %s: %s (%+v)", s.ID, st.State, st.Err)
			}
		}
		q.Drain()
	}
}
