// Command casestudies runs the six §4.2 case studies (sunflow, eclipse,
// bloat, derby, tomcat, tradebeans): each executes a bloated and an
// optimized variant of the same program (verifying identical output),
// reports the work and allocation reductions, and checks that the
// cost-benefit tool ranks the planted structure near the top.
//
// Usage:
//
//	casestudies [-scale N] [-s slots] [-workers N] [-v] [name ...]
package main

import (
	"flag"
	"fmt"
	"os"

	"lowutil/internal/casestudies"
	"lowutil/internal/par"
)

func main() {
	scale := flag.Int("scale", 4, "workload scale factor")
	slots := flag.Int("s", 16, "context slots")
	workers := flag.Int("workers", 0, "parallel studies (0 = all CPUs)")
	verbose := flag.Bool("v", false, "print the tool's top report per study")
	flag.Parse()

	var list []*casestudies.CaseStudy
	if flag.NArg() == 0 {
		list = casestudies.All()
	} else {
		for _, name := range flag.Args() {
			cs := casestudies.ByName(name)
			if cs == nil {
				fmt.Fprintf(os.Stderr, "casestudies: unknown study %q\n", name)
				os.Exit(2)
			}
			list = append(list, cs)
		}
	}

	fmt.Printf("%-11s %-42s\n", "study", "paper result")
	for _, cs := range list {
		fmt.Printf("%-11s %s\n", cs.Name, cs.PaperResult)
	}
	fmt.Println()

	// Studies are independent: fan out, then print in the listed order.
	results := make([]*casestudies.Result, len(list))
	errs := make([]error, len(list))
	par.ForEach(len(list), *workers, func(i int) {
		results[i], errs[i] = list[i].Run(*scale, *slots)
	})
	for i, cs := range list {
		if errs[i] != nil {
			fmt.Fprintf(os.Stderr, "casestudies: %v\n", errs[i])
			os.Exit(1)
		}
		fmt.Println(results[i])
		if *verbose {
			fmt.Printf("  pattern: %s\n  fix:     %s\n  tool report:\n", cs.Pattern, cs.Fix)
			fmt.Println(indent(results[i].TopReport, "    "))
		}
	}
}

func indent(s, prefix string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if i > start {
				out += prefix + s[start:i] + "\n"
			}
			start = i + 1
		}
	}
	return out
}
