package depgraph

// SCC condensation over the frozen CSR snapshot. This is the array-index
// sibling of Graph.SCC: Tarjan's algorithm run over flat int32 adjacency,
// with an optional boundary predicate that turns nodes into sinks (their
// out-edges are dropped before the condensation). The cost-benefit DP uses
// boundaries to encode the paper's heap-hop termination — heap readers
// (backward) and heap writers/consumers (forward) end traversals — and the
// deadness analysis uses the unrestricted forward form.

import "sort"

// Condensation is the SCC quotient of a snapshot under one edge family.
// Components are emitted in reverse topological order: every condensed edge
// points from a larger component index to a smaller one.
type Condensation struct {
	// NumComps is the component count.
	NumComps int
	// CompOf maps node ID → component index.
	CompOf []int32
	// Members of component c are CompNodes[CompStart[c]:CompStart[c+1]].
	CompStart []int32
	CompNodes []int32
	// Condensed edges (deduplicated): targets of component c are
	// Edges[EdgeStart[c]:EdgeStart[c+1]]; boundary components have none.
	EdgeStart []int32
	Edges     []int32
}

// Condense computes the condensation over the Use (forward=true) or Dep
// (forward=false) adjacency. boundary, when non-nil, marks nodes whose
// out-edges are dropped; such nodes always form singleton components.
func (s *Snapshot) Condense(forward bool, boundary []bool) *Condensation {
	start, adj := s.DepStart, s.Dep
	if forward {
		start, adj = s.UseStart, s.Use
	}
	n := len(s.Nodes)

	rowOf := func(v int32) []int32 {
		if boundary != nil && boundary[v] {
			return nil
		}
		return adj[start[v]:start[v+1]]
	}

	const unvisited = 0
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	stack := make([]int32, 0, n)
	compOf := make([]int32, n)
	var compSizes []int32
	next := int32(1)

	type frame struct {
		v   int32
		row []int32
		i   int32
	}
	var work []frame

	for root := int32(0); root < int32(n); root++ {
		if index[root] != unvisited {
			continue
		}
		work = append(work[:0], frame{v: root, row: rowOf(root)})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true

		for len(work) > 0 {
			f := &work[len(work)-1]
			if f.i < int32(len(f.row)) {
				t := f.row[f.i]
				f.i++
				if index[t] == unvisited {
					index[t] = next
					low[t] = next
					next++
					stack = append(stack, t)
					onStack[t] = true
					work = append(work, frame{v: t, row: rowOf(t)})
				} else if onStack[t] && index[t] < low[f.v] {
					low[f.v] = index[t]
				}
				continue
			}
			// f.v finished.
			v := f.v
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				ci := int32(len(compSizes))
				size := int32(0)
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					compOf[top] = ci
					size++
					if top == v {
						break
					}
				}
				compSizes = append(compSizes, size)
			}
		}
	}

	c := &Condensation{NumComps: len(compSizes), CompOf: compOf}

	// Membership CSR.
	c.CompStart = make([]int32, c.NumComps+1)
	for ci, size := range compSizes {
		c.CompStart[ci+1] = c.CompStart[ci] + size
	}
	c.CompNodes = make([]int32, n)
	cursor := make([]int32, c.NumComps)
	copy(cursor, c.CompStart[:c.NumComps])
	for v := int32(0); v < int32(n); v++ {
		ci := compOf[v]
		c.CompNodes[cursor[ci]] = v
		cursor[ci]++
	}

	// Condensed edges, deduplicated, grouped by source component.
	type edge struct{ from, to int32 }
	var edges []edge
	for v := int32(0); v < int32(n); v++ {
		cv := compOf[v]
		for _, t := range rowOf(v) {
			if ct := compOf[t]; ct != cv {
				edges = append(edges, edge{cv, ct})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	c.EdgeStart = make([]int32, c.NumComps+1)
	c.Edges = make([]int32, 0, len(edges))
	for i, e := range edges {
		if i > 0 && edges[i-1] == e {
			continue
		}
		c.EdgeStart[e.from+1]++
		c.Edges = append(c.Edges, e.to)
	}
	for ci := 0; ci < c.NumComps; ci++ {
		c.EdgeStart[ci+1] += c.EdgeStart[ci]
	}
	return c
}

// Members returns the node IDs of component ci.
func (c *Condensation) Members(ci int32) []int32 {
	return c.CompNodes[c.CompStart[ci]:c.CompStart[ci+1]]
}

// Succs returns the condensed successor components of ci; every returned
// index is smaller than ci's reverse-topological position guarantees.
func (c *Condensation) Succs(ci int32) []int32 {
	return c.Edges[c.EdgeStart[ci]:c.EdgeStart[ci+1]]
}
