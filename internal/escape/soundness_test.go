package escape

import (
	"testing"

	"lowutil/internal/interp"
	"lowutil/internal/interproc"
	"lowutil/internal/ir"
	"lowutil/internal/workloads"
)

// observeEscapes runs prog under the escape Observer and returns the
// allocation sites that dynamically escaped their allocating frame.
func observeEscapes(t *testing.T, name string, prog *ir.Program) []int {
	t.Helper()
	obs := NewObserver()
	m := interp.New(prog)
	m.Tracer = obs
	m.MaxSteps = 200_000_000
	if err := m.Run(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return obs.EscapedSites()
}

// checkEscapeContainment asserts dynamic ⊆ static: every allocation site
// observed escaping its allocating frame at run time must be classified
// arg-escape or global-escape by the static analysis.
func checkEscapeContainment(t *testing.T, name string, escaped []int, r *Result) {
	t.Helper()
	label := name + "/" + r.An.CG.Mode.String()
	for _, s := range escaped {
		si := r.Site(s)
		if si == nil {
			t.Errorf("%s: dynamically escaped site %d is not statically reachable", label, s)
			continue
		}
		if si.State == NoEscape {
			t.Errorf("%s: dynamically escaped site %d (%s) classified no-escape",
				label, s, r.SiteName(si))
		}
	}
}

// TestEscapeSoundnessAllWorkloads is the escape soundness harness: on every
// workload, every allocation site the dynamic Observer sees escaping its
// allocating frame must be predicted by the static escape analysis, under
// both the CHA and the RTA call graph (the RTA variant additionally enables
// the object-sensitive heap, exercising the finer abstract objects).
func TestEscapeSoundnessAllWorkloads(t *testing.T) {
	shortSet := map[string]bool{"chart": true, "avrora": true, "hsqldb": true, "luindex": true}
	totalEscaped := 0
	for _, w := range workloads.All() {
		if testing.Short() && !shortSet[w.Name] {
			continue
		}
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog, err := w.Compile(1)
			if err != nil {
				t.Fatal(err)
			}
			escaped := observeEscapes(t, w.Name, prog)
			totalEscaped += len(escaped)
			checkEscapeContainment(t, w.Name, escaped,
				Analyze(interproc.Analyze(prog, interproc.Config{Mode: interproc.CHA})))
			checkEscapeContainment(t, w.Name, escaped,
				Analyze(interproc.Analyze(prog, interproc.Config{Mode: interproc.RTA, ObjCtx: true})))
		})
	}
	if totalEscaped == 0 {
		t.Error("no workload produced a dynamic escape; the harness would be vacuous")
	}
}
