package ir

// This file hosts the dominator machinery the SSA layer is built on. The
// immediate-dominator computation started life in internal/staticanalysis
// (PR 1); it lives here now so that internal/ssa can use it without a
// dependency cycle (staticanalysis depends on ssa for its sparse vet
// checks). staticanalysis re-exports Dominators for its existing callers.

// Dominators computes the immediate dominator of every reachable block with
// the Cooper–Harvey–Kennedy iterative algorithm over the reverse postorder.
// idom[entry] == entry; idom[b] == -1 for unreachable blocks.
func Dominators(cfg *CFG) []int {
	nb := cfg.NumBlocks()
	idom := make([]int, nb)
	for i := range idom {
		idom[i] = -1
	}
	if nb == 0 {
		return idom
	}
	idom[0] = 0

	intersect := func(a, b int) int {
		for a != b {
			for cfg.RPOIndex(a) > cfg.RPOIndex(b) {
				a = idom[a]
			}
			for cfg.RPOIndex(b) > cfg.RPOIndex(a) {
				b = idom[b]
			}
		}
		return a
	}

	changed := true
	for changed {
		changed = false
		for _, b := range cfg.RPO {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range cfg.Blocks[b].Preds {
				if idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// DomTree is the dominator tree of a CFG plus the dominance frontiers — the
// inputs to pruned-SSA phi placement.
type DomTree struct {
	CFG *CFG
	// Idom[b] is the immediate dominator of block b. Idom[entry] == entry;
	// -1 for blocks unreachable from the entry.
	Idom []int
	// Children[b] lists the blocks whose immediate dominator is b (the entry
	// excluded from its own children), in ascending block order.
	Children [][]int
	// Frontier[b] is the dominance frontier of block b — the blocks where
	// b's dominance stops, i.e. the join points needing phis for defs in b —
	// in ascending block order, deduplicated.
	Frontier [][]int
}

// NewDomTree computes the dominator tree and dominance frontiers of cfg.
func NewDomTree(cfg *CFG) *DomTree {
	d := &DomTree{CFG: cfg, Idom: Dominators(cfg)}
	nb := cfg.NumBlocks()
	d.Children = make([][]int, nb)
	for b := 0; b < nb; b++ {
		if b == 0 || d.Idom[b] == -1 {
			continue
		}
		d.Children[d.Idom[b]] = append(d.Children[d.Idom[b]], b)
	}
	// Dominance frontiers (Cooper–Harvey–Kennedy): for every join block,
	// walk each predecessor's idom chain up to the join's idom.
	d.Frontier = make([][]int, nb)
	inFrontier := make([]int, nb) // last join added per runner, -1 sentinel
	for i := range inFrontier {
		inFrontier[i] = -1
	}
	for _, b := range cfg.RPO {
		preds := cfg.Blocks[b].Preds
		// The entry is a join point as soon as it has any predecessor: the
		// implicit function-entry edge (parameters, undefs) always joins it.
		if len(preds) < 2 && !(b == 0 && len(preds) >= 1) {
			continue
		}
		for _, p := range preds {
			if d.Idom[p] == -1 {
				continue
			}
			for runner := p; runner != d.Idom[b]; runner = d.Idom[runner] {
				if inFrontier[runner] != b {
					inFrontier[runner] = b
					d.Frontier[runner] = append(d.Frontier[runner], b)
				}
			}
		}
	}
	return d
}

// Dominates reports whether block a dominates block b (reflexively).
func (d *DomTree) Dominates(a, b int) bool {
	if d.Idom[b] == -1 {
		return false
	}
	if a == 0 {
		return true
	}
	for b != 0 {
		if a == b {
			return true
		}
		b = d.Idom[b]
	}
	return a == 0
}
