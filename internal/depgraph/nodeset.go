package depgraph

// nodeSet is the edge-set representation behind Node.deps/uses/refs and the
// dense graph's points-to children. Members are intern IDs, not pointers:
// the profiler performs an AddDep for every traced instruction, and int32
// appends keep that path free of GC write barriers (a pointer store into a
// heap-allocated edge list pays the hybrid barrier whenever the collector
// is marking). Most nodes have a handful of edges, so the set is an
// append-only slice with linear-scan dedup; past setSpillThreshold a compact
// open-addressing table takes over the duplicate check while the slice keeps
// the members in insertion order. This keeps the hot path free of map
// operations, and makes iteration deterministic in both regimes.
type nodeSet struct {
	list []int32 // member intern IDs, insertion order
	tab  []int32 // open-addressing dedup index (id+1), power-of-two, 0 = empty
}

// setSpillThreshold is the list length past which a nodeSet builds its dedup
// table. Linear scans up to this length are cheaper than hash probes.
const setSpillThreshold = 8

// hashID scatters an intern ID over the table (Fibonacci hashing).
func hashID(id uint32) uint32 {
	return id * 2654435769
}

// add inserts the node with intern ID id and reports whether it was not
// already present.
func (s *nodeSet) add(id int32) bool {
	if s.tab == nil {
		for _, m := range s.list {
			if m == id {
				return false
			}
		}
		s.list = append(s.list, id)
		if len(s.list) > setSpillThreshold {
			s.grow(4 * setSpillThreshold)
		}
		return true
	}
	mask := uint32(len(s.tab) - 1)
	h := hashID(uint32(id)) & mask
	for s.tab[h] != 0 {
		if s.tab[h] == id+1 {
			return false
		}
		h = (h + 1) & mask
	}
	s.tab[h] = id + 1
	s.list = append(s.list, id)
	if 4*len(s.list) >= 3*len(s.tab) {
		s.grow(2 * len(s.tab))
	}
	return true
}

// hasTab reports membership via the dedup table. Callers must have checked
// that the table exists.
func (s *nodeSet) hasTab(id int32) bool {
	mask := uint32(len(s.tab) - 1)
	h := hashID(uint32(id)) & mask
	for s.tab[h] != 0 {
		if s.tab[h] == id+1 {
			return true
		}
		h = (h + 1) & mask
	}
	return false
}

// grow (re)builds the dedup table at the given power-of-two capacity.
func (s *nodeSet) grow(capacity int) {
	s.tab = make([]int32, capacity)
	mask := uint32(capacity - 1)
	for _, m := range s.list {
		h := hashID(uint32(m)) & mask
		for s.tab[h] != 0 {
			h = (h + 1) & mask
		}
		s.tab[h] = m + 1
	}
}

// len returns the set size.
func (s *nodeSet) len() int { return len(s.list) }

// each calls f for every member, in insertion order, resolving IDs through
// the graph's intern list.
func (s *nodeSet) each(all []*Node, f func(*Node)) {
	for _, id := range s.list {
		f(all[id])
	}
}
