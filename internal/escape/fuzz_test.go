package escape

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"lowutil/internal/interp"
	"lowutil/internal/interproc"
	"lowutil/internal/mjc"
)

// escFuzzSource builds a program whose main loop mixes escape shapes in
// whatever order the fuzzer chooses: frame-local scratch allocations,
// allocations captured by a long-lived keeper, allocations returned out of
// their allocating method, and copy-chains reading a captured object back
// into a fresh local. Every byte mutates which sites allocate, which
// escape, and which are dereferenced after their allocating frame popped.
func escFuzzSource(seq []byte) string {
	var body strings.Builder
	for i, b := range seq {
		switch b % 4 {
		case 0:
			fmt.Fprintf(&body, "    total = total + k.drop(%d);\n", i)
		case 1:
			fmt.Fprintf(&body, "    k.keep(%d);\n    total = total + k.kept.v;\n", i)
		case 2:
			fmt.Fprintf(&body, "    total = total + k.make(%d).v;\n", i)
		default:
			fmt.Fprintf(&body, "    k.keep(%d);\n    Node c%d = new Node();\n    c%d.v = k.kept.v;\n    total = total + c%d.v;\n", i, i, i, i)
		}
	}
	return fmt.Sprintf(`
class Node { int v; }
class Keeper {
  Node kept;
  Node make(int x) { Node n = new Node(); n.v = x; return n; }
  void keep(int x) { Node n = new Node(); n.v = x + 1; this.kept = n; }
  int drop(int x) { Node n = new Node(); n.v = x * 2; return n.v; }
}
class Main {
  static void main() {
    Keeper k = new Keeper();
    int total = 0;
%s    print(total);
  }
}`, body.String())
}

// FuzzEscapeMonotone checks the soundness invariant stays monotone under
// arbitrary program mutations: however the fuzzer reorders and mixes the
// escape shapes, a site the dynamic profile observes escaping must never be
// classified below arg-escape statically — in particular a mutation can
// never demote a dynamically escaping (e.g. globally captured) site to
// no-escape. Mirrors the FuzzInlineCacheInvalidation structure from the
// engine differential suite.
func FuzzEscapeMonotone(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{3, 3, 0, 2, 1, 0})
	f.Add(bytes.Repeat([]byte{2, 1}, 8))
	f.Add(bytes.Repeat([]byte{0, 3, 1, 2}, 4))
	f.Fuzz(func(t *testing.T, seq []byte) {
		if len(seq) == 0 || len(seq) > 48 {
			t.Skip()
		}
		prog, err := mjc.Compile(escFuzzSource(seq))
		if err != nil {
			t.Fatalf("generated program failed to compile: %v", err)
		}
		obs := NewObserver()
		m := interp.New(prog)
		m.Tracer = obs
		m.MaxSteps = 10_000_000
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []interproc.Config{
			{Mode: interproc.CHA},
			{Mode: interproc.RTA, ObjCtx: true},
		} {
			r := Analyze(interproc.Analyze(prog, cfg))
			for _, s := range obs.EscapedSites() {
				si := r.Site(s)
				if si == nil {
					t.Fatalf("seq %v: dynamically escaped site %d unreachable statically (mode %v)", seq, s, cfg.Mode)
				}
				if si.State == NoEscape {
					t.Fatalf("seq %v: dynamically escaped site %d (%s) demoted to no-escape (mode %v)",
						seq, s, r.SiteName(si), cfg.Mode)
				}
			}
		}
	})
}
