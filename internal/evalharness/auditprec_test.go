package evalharness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lowutil/internal/workloads"
)

// TestAuditPrecisionRankCorrelation is the static-audit regression gate:
// per workload, how well the fully static audit ranks allocation sites
// against the dynamic profile. The harness is deterministic end to end, so
// any drift from the recorded baseline fails; regenerate with -update
// (full mode, not -short) after an intended change. On top of the per-row
// pin, the suite-wide mean Spearman must stay at or above +0.70 — the
// audit's headline precision claim: a purely static ranking that agrees
// with ground truth.
func TestAuditPrecisionRankCorrelation(t *testing.T) {
	golden := filepath.Join("testdata", "audit_precision.golden")
	var rows []*AuditPrecisionRow
	var sum float64
	for _, w := range workloads.All() {
		if testing.Short() && !precisionShort[w.Name] {
			continue
		}
		r, err := AuditPrecision(w.Name, 1)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		// A single-site intersection (fop) pins rho at 0 by definition;
		// only an empty intersection means the harness is degenerate.
		if r.Matched < 1 {
			t.Errorf("%s: no matched sites — harness degenerate", w.Name)
		}
		rows = append(rows, r)
		sum += r.Rho
	}

	if *updatePrecision {
		if testing.Short() {
			t.Fatal("-update needs the full suite: rerun without -short")
		}
		var b strings.Builder
		for _, r := range rows {
			b.WriteString(r.String())
			b.WriteByte('\n')
		}
		if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}

	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	want := make(map[string]string)
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		want[strings.Fields(line)[0]] = line
	}
	for _, r := range rows {
		if got := r.String(); got != want[r.Name] {
			t.Errorf("audit precision drift for %s:\n  got:  %s\n  want: %s\n(regenerate with -update if intended)",
				r.Name, got, want[r.Name])
		}
	}

	// The acceptance gate: the static audit must rank sites with a mean
	// Spearman of at least +0.70 against the dynamic ground truth.
	if mean := sum / float64(len(rows)); mean < 0.70 {
		t.Errorf("static audit mean Spearman %.4f < 0.70 acceptance floor", mean)
	}
}
