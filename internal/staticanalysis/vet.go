package staticanalysis

import (
	"fmt"

	"lowutil/internal/interproc"
	"lowutil/internal/ir"
)

// Kind classifies a vet finding.
type Kind uint8

const (
	// KindDeadStore: a local definition whose value no path ever reads.
	KindDeadStore Kind = iota
	// KindWriteOnlyField: a field stored somewhere but loaded nowhere in the
	// whole program — the static shadow of a dynamically zero-benefit
	// location.
	KindWriteOnlyField
	// KindUnusedAlloc: an allocation whose object is only ever constructed
	// (stored into) and never read from or passed anywhere.
	KindUnusedAlloc
	// KindUnreachable: a basic block no path from the method entry reaches.
	KindUnreachable
	// KindUninitRead: a read of a slot some path reaches without
	// initializing (reads no path initializes are rejected at seal time).
	KindUninitRead
	// KindCalleeClobbered: a definition whose every use passes the value to
	// a call-argument position that no resolved callee ever reads — dead
	// work the per-method dead-store check cannot see.
	KindCalleeClobbered
	// KindConfinedAllocInLoop: a non-escaping allocation inside a loop whose
	// every use stays within the loop body — one fresh object per iteration
	// where a single reused object would do.
	KindConfinedAllocInLoop
	// KindCopyChain: an allocation exhibiting the alloc → populate →
	// copy-out → drop shape: the structure is populated, its contents are
	// copied into a different structure, and the container itself is
	// dropped — a transient copy vehicle.
	KindCopyChain
)

var kindNames = [...]string{
	KindDeadStore:           "dead-store",
	KindWriteOnlyField:      "write-only-field",
	KindUnusedAlloc:         "unused-alloc",
	KindUnreachable:         "unreachable-code",
	KindUninitRead:          "uninit-read",
	KindCalleeClobbered:     "callee-clobbered-store",
	KindConfinedAllocInLoop: "confined-alloc-in-loop",
	KindCopyChain:           "copy-chain",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Finding is one vet diagnostic, anchored to a method pc (or to a field for
// program-level findings, with Method == "" and PC == -1).
type Finding struct {
	Kind   Kind
	Class  string
	Method string
	PC     int
	Line   int
	Detail string
}

func (f Finding) String() string {
	if f.Method == "" {
		return fmt.Sprintf("%s: [%s] %s", f.Class, f.Kind, f.Detail)
	}
	loc := fmt.Sprintf("%s.%s:%d", f.Class, f.Method, f.PC)
	if f.Line > 0 {
		loc = fmt.Sprintf("%s (line %d)", loc, f.Line)
	}
	return fmt.Sprintf("%s: [%s] %s", loc, f.Kind, f.Detail)
}

// deadStoreOps are the value-producing opcodes eligible for dead-store
// reporting: recomputable work with no heap write, call, allocation, or
// consumer semantics. Loads are included — an unread loaded value is exactly
// the waste the paper measures — but allocations are left to the
// unused-alloc check, and calls/natives may have effects.
var deadStoreOps = map[ir.Op]bool{
	ir.OpConst:      true,
	ir.OpMove:       true,
	ir.OpBin:        true,
	ir.OpNeg:        true,
	ir.OpNot:        true,
	ir.OpInstanceOf: true,
	ir.OpLoadField:  true,
	ir.OpLoadStatic: true,
	ir.OpALoad:      true,
	ir.OpArrayLen:   true,
}

// VetDense runs the full static diagnostics suite using the dense
// (reaching-definitions) per-method engine. It predates the SSA engine in
// vetssa.go and is kept both as the reference point for the differential
// test and as a fallback (`lowutil vet -engine=dense`): every SSA finding
// class is pinned to this engine's results, kind by kind.
func VetDense(prog *ir.Program) []Finding {
	return VetDenseWith(prog, interproc.Analyze(prog, interproc.Config{Mode: interproc.RTA}))
}

// VetDenseWith is VetDense over a caller-supplied interprocedural analysis.
// A nil analysis degrades every whole-program check to its single-method
// approximation (the pre-call-graph behavior).
func VetDenseWith(prog *ir.Program, an *interproc.Analysis) []Finding {
	var out []Finding
	out = append(out, writeOnlyFields(prog, an)...)
	out = append(out, escapeLints(an)...)
	unusedByPT := interprocUnusedObjects(an)
	for _, c := range prog.Classes {
		for _, m := range c.Methods {
			out = append(out, vetMethod(m, an, unusedByPT)...)
		}
	}
	sortFindings(out)
	return out
}

// writeOnlyFields finds instance and static fields stored somewhere but
// loaded nowhere in the program. With a call graph, loads and stores in
// unreachable methods no longer count: a field whose every load sits in dead
// code is reported (with a distinguishing message), and a field stored only
// in dead code is not reported at all.
func writeOnlyFields(prog *ir.Program, an *interproc.Analysis) []Finding {
	loaded := make(map[*ir.Field]bool)
	stored := make(map[*ir.Field]bool)
	loadedAnywhere := make(map[*ir.Field]bool)
	staticLoaded := make(map[*ir.StaticField]bool)
	staticStored := make(map[*ir.StaticField]bool)
	staticLoadedAnywhere := make(map[*ir.StaticField]bool)
	for _, in := range prog.Instrs {
		reachable := an == nil || an.CG.Reachable(in.Method)
		switch in.Op {
		case ir.OpLoadField:
			loadedAnywhere[in.Field] = true
			if reachable {
				loaded[in.Field] = true
			}
		case ir.OpStoreField:
			if reachable {
				stored[in.Field] = true
			}
		case ir.OpLoadStatic:
			staticLoadedAnywhere[in.Static] = true
			if reachable {
				staticLoaded[in.Static] = true
			}
		case ir.OpStoreStatic:
			if reachable {
				staticStored[in.Static] = true
			}
		}
	}
	detail := func(kind, name string, loadedSomewhere bool) string {
		if loadedSomewhere {
			return fmt.Sprintf("%s %s is stored but loaded only in unreachable code", kind, name)
		}
		return fmt.Sprintf("%s %s is stored but never loaded", kind, name)
	}
	var out []Finding
	for _, c := range prog.Classes {
		for _, f := range c.Fields {
			if stored[f] && !loaded[f] {
				out = append(out, Finding{
					Kind:   KindWriteOnlyField,
					Class:  c.Name,
					PC:     -1,
					Detail: detail("field", f.QualifiedName(), loadedAnywhere[f]),
				})
			}
		}
	}
	for _, sf := range prog.Statics {
		if staticStored[sf] && !staticLoaded[sf] {
			out = append(out, Finding{
				Kind:   KindWriteOnlyField,
				Class:  sf.Class.Name,
				PC:     -1,
				Detail: detail("static field", sf.QualifiedName(), staticLoadedAnywhere[sf]),
			})
		}
	}
	return out
}

// interprocUnusedObjects returns, per allocation-site instruction ID, whether
// the whole-program points-to relation proves the objects allocated there are
// never read: no reachable heap read uses them as a base, and no reachable
// predicate, instanceof, or native consumes the reference itself. Writes into
// the object (construction) do not count as uses, matching the dynamic
// zero-benefit criterion.
func interprocUnusedObjects(an *interproc.Analysis) map[int]bool {
	if an == nil {
		return nil
	}
	used := make(map[interproc.ObjID]bool)
	mark := func(m *ir.Method, slot int) {
		for _, o := range an.PT.VarPT(m, slot) {
			used[o] = true
		}
	}
	for _, m := range an.CG.Methods() {
		for pc := range m.Code {
			in := &m.Code[pc]
			switch in.Op {
			case ir.OpLoadField, ir.OpALoad, ir.OpArrayLen:
				mark(m, in.A)
			case ir.OpIf:
				mark(m, in.A)
				mark(m, in.B)
			case ir.OpInstanceOf:
				mark(m, in.A)
			case ir.OpNative:
				for _, a := range in.Args {
					mark(m, a)
				}
			}
		}
	}
	unused := make(map[int]bool)
	objsBySite := make(map[int][]interproc.ObjID)
	for id := range an.PT.Objects {
		site := an.PT.Objects[id].Site
		objsBySite[site.ID] = append(objsBySite[site.ID], interproc.ObjID(id))
	}
	for siteID, objs := range objsBySite {
		dead := true
		for _, o := range objs {
			if used[o] {
				dead = false
				break
			}
		}
		unused[siteID] = dead
	}
	return unused
}

// vetMethod runs the per-method checks: dead stores, unused allocations,
// unreachable code, possibly-uninitialized reads, and (given an analysis)
// callee-clobbered stores.
func vetMethod(m *ir.Method, an *interproc.Analysis, unusedByPT map[int]bool) []Finding {
	cfg := ir.NewCFG(m)
	rd := NewReachingDefs(m, cfg)
	du := rd.DefUse()
	var out []Finding

	finding := func(kind Kind, pc int, format string, args ...any) Finding {
		return Finding{
			Kind:   kind,
			Class:  m.Class.Name,
			Method: m.Name,
			PC:     pc,
			Line:   m.Code[pc].Line,
			Detail: fmt.Sprintf(format, args...),
		}
	}

	// Dead stores: a definition with no uses at all. Zero/null constants are
	// exempt — the MJ front end synthesizes them for every declaration
	// without an initializer, and `int x = 0; if (...) x = 1;` is idiomatic.
	for pc := range m.Code {
		in := &m.Code[pc]
		if in.Def() < 0 || !deadStoreOps[in.Op] || !cfg.Reachable(cfg.BlockOf[pc]) {
			continue
		}
		if in.Op == ir.OpConst && (in.IsNull || in.Imm == 0) {
			continue
		}
		if len(du[pc]) == 0 {
			out = append(out, finding(KindDeadStore, pc,
				"value of %s (%s) is never used", m.LocalName(in.Dst), in))
		}
	}

	// Unused allocations. The per-method rule: the object is only ever
	// written into (it is a store base) or copied between locals; it is
	// never loaded from, never compared, and never escapes into a call, the
	// heap, or the return value. With whole-program points-to the escape
	// bail-outs go away: an object may be stored into the heap and passed
	// between methods, and is still dead when no reachable instruction ever
	// reads through it or consumes the reference.
	covered := an != nil && an.CG.Reachable(m)
	for pc := range m.Code {
		in := &m.Code[pc]
		if !in.IsAlloc() || !cfg.Reachable(cfg.BlockOf[pc]) {
			continue
		}
		switch {
		case allocIsUnused(m, du, pc):
			out = append(out, finding(KindUnusedAlloc, pc,
				"allocation (%s) never escapes and is never read", in))
		case covered && unusedByPT[in.ID]:
			out = append(out, finding(KindUnusedAlloc, pc,
				"allocation (%s) is never read through any alias", in))
		}
	}

	// Callee-clobbered stores: a computed value whose every use hands it to
	// a call-argument position that no resolved target reads. The dead-store
	// check requires an empty use set; this is its interprocedural
	// completion for uses that cross into callees and die there.
	if covered {
		for pc := range m.Code {
			in := &m.Code[pc]
			if in.Def() < 0 || !deadStoreOps[in.Op] || !cfg.Reachable(cfg.BlockOf[pc]) {
				continue
			}
			if in.Op == ir.OpConst && (in.IsNull || in.Imm == 0) {
				continue
			}
			if len(du[pc]) == 0 || !usesAllClobbered(m, an, du[pc], in.Dst) {
				continue
			}
			out = append(out, finding(KindCalleeClobbered, pc,
				"value of %s (%s) is passed only to parameters no callee reads",
				m.LocalName(in.Dst), in))
		}
	}

	// Unreachable code. Blocks holding only gotos and void returns are
	// compiler plumbing (the MJ front end emits a jump after a returning
	// then-branch and a trailing return after a returning body) and are not
	// reported.
	for b := range cfg.Blocks {
		blk := &cfg.Blocks[b]
		if cfg.Reachable(b) {
			continue
		}
		artifact := true
		for pc := blk.Start; pc < blk.End; pc++ {
			in := &m.Code[pc]
			if in.Op != ir.OpGoto && !(in.Op == ir.OpReturn && !in.HasA) {
				artifact = false
				break
			}
		}
		if !artifact {
			out = append(out, finding(KindUnreachable, blk.Start,
				"unreachable code (%d instructions)", blk.End-blk.Start))
		}
	}

	// Possibly-uninitialized reads: a must-initialized forward analysis
	// (intersection over predecessors). A read outside the must-set has some
	// path that bypasses the slot's initialization. Reads with *no*
	// initializing path are rejected by the IR validator before a program
	// gets here.
	out = append(out, uninitReads(m, cfg)...)
	return out
}

// usesAllClobbered reports whether every given use of a value in slot is a
// call argument at a position every resolved target ignores. A slot may
// appear at several argument positions of one call; all of them must be
// ignored.
func usesAllClobbered(m *ir.Method, an *interproc.Analysis, uses []Use, slot int) bool {
	for _, u := range uses {
		c := &m.Code[u.PC]
		if c.Op != ir.OpCall {
			return false
		}
		for i, a := range c.Args {
			if a == slot && !an.Sum.ArgIgnoredByAllTargets(c, i) {
				return false
			}
		}
	}
	return true
}

// allocIsUnused walks the def-use chains from the allocation at pc,
// following local-to-local moves, and reports whether every transitive use
// is a construction-only use (a store with the object as base).
func allocIsUnused(m *ir.Method, du [][]Use, pc int) bool {
	visited := map[int]bool{pc: true}
	work := []int{pc}
	for len(work) > 0 {
		d := work[len(work)-1]
		work = work[:len(work)-1]
		for _, u := range du[d] {
			in := &m.Code[u.PC]
			switch {
			case in.Op == ir.OpMove:
				if !visited[u.PC] {
					visited[u.PC] = true
					work = append(work, u.PC)
				}
			case u.Base && (in.Op == ir.OpStoreField || in.Op == ir.OpAStore):
				// Writing into the object: construction work only.
			default:
				// Loaded from, compared, returned, passed, or stored as a
				// value — the object is used.
				return false
			}
		}
	}
	return true
}

// uninitReads reports reads of slots not must-initialized at the read point.
func uninitReads(m *ir.Method, cfg *ir.CFG) []Finding {
	nb := cfg.NumBlocks()
	if nb == 0 {
		return nil
	}
	boundary := NewBitSet(m.NumLocals)
	for s := 0; s < m.Params && s < m.NumLocals; s++ {
		boundary.Set(s)
	}
	p := &Problem{
		CFG:       cfg,
		Bits:      m.NumLocals,
		Intersect: true,
		Gen:       make([]BitSet, nb),
		Kill:      make([]BitSet, nb),
		Boundary:  boundary,
	}
	for b := 0; b < nb; b++ {
		gen := NewBitSet(m.NumLocals)
		blk := &cfg.Blocks[b]
		for pc := blk.Start; pc < blk.End; pc++ {
			if d := m.Code[pc].Def(); d >= 0 {
				gen.Set(d)
			}
		}
		p.Gen[b] = gen
		p.Kill[b] = NewBitSet(m.NumLocals)
	}
	sol := Solve(p)

	var out []Finding
	cur := NewBitSet(m.NumLocals)
	for _, b := range cfg.RPO {
		blk := &cfg.Blocks[b]
		cur.CopyFrom(sol.In[b])
		for pc := blk.Start; pc < blk.End; pc++ {
			in := &m.Code[pc]
			reported := false
			in.Uses(func(s int, _ bool) {
				if reported || cur.Has(s) {
					return
				}
				reported = true
				out = append(out, Finding{
					Kind:   KindUninitRead,
					Class:  m.Class.Name,
					Method: m.Name,
					PC:     pc,
					Line:   in.Line,
					Detail: fmt.Sprintf("%s may be read before initialization (%s)", m.LocalName(s), in),
				})
			})
			if d := in.Def(); d >= 0 {
				cur.Set(d)
			}
		}
	}
	return out
}

// WriteOnlyFieldIDs returns the dense IDs of instance fields that are stored
// but never loaded anywhere in the program — the static cross-check the
// cost-benefit report compares against dynamically zero-benefit locations.
func WriteOnlyFieldIDs(prog *ir.Program) map[int]bool {
	loaded := make(map[int]bool)
	stored := make(map[int]bool)
	for _, in := range prog.Instrs {
		switch in.Op {
		case ir.OpLoadField:
			loaded[in.Field.ID] = true
		case ir.OpStoreField:
			stored[in.Field.ID] = true
		}
	}
	out := make(map[int]bool)
	for id := range stored {
		if !loaded[id] {
			out[id] = true
		}
	}
	return out
}
