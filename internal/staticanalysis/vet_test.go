package staticanalysis

import (
	"reflect"
	"strings"
	"testing"

	"lowutil/internal/ir"
	"lowutil/internal/mjc"
)

const seededSrc = `
class Tag {
  int color;
  int width;
  void set(int c, int w) { this.color = c; this.width = w; }
  int span() { return this.width; }
}
class Main {
  static int ten() {
    return 10;
    print(99);
  }
  static void main() {
    int waste = hash(7) % 100;
    Tag scratch = new Tag();
    scratch.width = 3;
    Tag t = new Tag();
    t.set(2, ten());
    print(t.span());
  }
}`

const cleanSrc = `
class Acc {
  int total;
  void bump(int v) { this.total = this.total + v; }
  int get() { return this.total; }
}
class Main {
  static void main() {
    Acc a = new Acc();
    for (int i = 0; i < 10; i = i + 1) {
      a.bump(i);
    }
    print(a.get());
  }
}`

func compileMJ(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := mjc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func kinds(fs []Finding) map[Kind]int {
	m := map[Kind]int{}
	for _, f := range fs {
		m[f.Kind]++
	}
	return m
}

func TestVetFindsSeededPatterns(t *testing.T) {
	prog := compileMJ(t, seededSrc)
	fs := Vet(prog)
	k := kinds(fs)
	for _, want := range []Kind{KindDeadStore, KindWriteOnlyField, KindUnusedAlloc, KindUnreachable} {
		if k[want] == 0 {
			t.Errorf("missing %s finding in %v", want, fs)
		}
	}
	// The write-only field is Tag.color, reported at program level.
	found := false
	for _, f := range fs {
		if f.Kind == KindWriteOnlyField {
			if f.Method != "" || f.PC != -1 {
				t.Errorf("field finding must be program-level, got %+v", f)
			}
			if strings.Contains(f.Detail, "Tag.color") {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no write-only finding names Tag.color: %v", fs)
	}
}

func TestVetCleanProgram(t *testing.T) {
	if fs := Vet(compileMJ(t, cleanSrc)); len(fs) != 0 {
		t.Errorf("clean program produced findings: %v", fs)
	}
}

func TestVetDeterministicAndSorted(t *testing.T) {
	prog := compileMJ(t, seededSrc)
	a, b := Vet(prog), Vet(prog)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Vet is not deterministic")
	}
	for i := 1; i < len(a); i++ {
		p, q := a[i-1], a[i]
		if p.Class > q.Class || (p.Class == q.Class && p.Method > q.Method) {
			t.Fatalf("findings unsorted at %d: %v before %v", i, p, q)
		}
	}
}

// TestVetUninitRead: a read initialized on one path but bypassed on the
// other passes seal-time validation (may-init) yet is a vet finding
// (must-init).
func TestVetUninitRead(t *testing.T) {
	b := ir.NewBuilder()
	cls := b.Class("Main", nil)
	m := b.Method(cls, "main", true, 0, nil)
	mb := b.Body(m)
	mb.Const(0, 1)                // pc0
	ifpc := mb.If(0, ir.Eq, 0, 0) // pc1, patched past the init
	mb.Const(1, 5)                // pc2: the only init of v1
	l := mb.PC()
	mb.Move(2, 1) // pc3: reads v1, possibly uninitialized
	mb.ReturnVoid()
	mb.Patch(ifpc, l)
	prog, err := b.Seal("Main", "main")
	if err != nil {
		t.Fatalf("one-path init must pass validation: %v", err)
	}
	fs := Vet(prog)
	got := false
	for _, f := range fs {
		if f.Kind == KindUninitRead && f.PC == 3 {
			got = true
		}
	}
	if !got {
		t.Errorf("no uninit-read finding at pc3: %v", fs)
	}
}

func TestWriteOnlyFieldIDs(t *testing.T) {
	ids := WriteOnlyFieldIDs(compileMJ(t, seededSrc))
	if len(ids) != 1 {
		t.Errorf("write-only field IDs = %v, want exactly Tag.color", ids)
	}
	if ids2 := WriteOnlyFieldIDs(compileMJ(t, cleanSrc)); len(ids2) != 0 {
		t.Errorf("clean program write-only IDs = %v, want none", ids2)
	}
}
