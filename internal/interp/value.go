// Package interp implements the virtual machine that executes ir.Programs.
//
// The machine plays the role of the instrumented IBM J9 JVM in the paper: it
// interprets three-address code one instruction at a time, counts every
// executed instruction instance (domain N), and exposes a Tracer hook that
// receives a resolved event per instruction — the moral equivalent of the
// JVM-level instrumentation in Figure 4 of the paper. Profilers (the
// cost-benefit profiler, the client analyses) are Tracers; running with a
// nil Tracer is the uninstrumented baseline used for overhead measurements.
package interp

import (
	"fmt"

	"lowutil/internal/ir"
)

// Value is a runtime value: an int or a reference. The zero Value is the
// int 0.
type Value struct {
	K   ir.Kind
	I   int64
	Ref *Object
}

// IntVal returns an int value.
func IntVal(i int64) Value { return Value{K: ir.KindInt, I: i} }

// RefVal returns a reference value (obj may be nil for null).
func RefVal(obj *Object) Value { return Value{K: ir.KindRef, Ref: obj} }

// Null is the null reference.
var Null = Value{K: ir.KindRef}

// IsNull reports whether v is the null reference.
func (v Value) IsNull() bool { return v.K == ir.KindRef && v.Ref == nil }

// Truthy reports whether v is a non-zero int or non-null reference.
func (v Value) Truthy() bool {
	if v.K == ir.KindRef {
		return v.Ref != nil
	}
	return v.I != 0
}

func (v Value) String() string {
	switch {
	case v.K == ir.KindRef && v.Ref == nil:
		return "null"
	case v.K == ir.KindRef:
		return v.Ref.String()
	default:
		return fmt.Sprintf("%d", v.I)
	}
}

// Object is a heap object: a class instance (Class non-nil) or an array
// (Elems non-nil). Shadow is reserved for tracers — it is the per-object
// slice of the "shadow heap" in the paper, giving O(1) access to tracking
// data for each field, plus the object tag (environment P).
type Object struct {
	Class  *ir.Class
	Elems  []Value  // arrays only
	ElemT  *ir.Type // array element type
	Fields []Value

	Site int   // allocation-site index (domain O)
	Seq  int64 // unique object sequence number

	// Shadow is owned by the active Tracer; the machine never touches it.
	Shadow any
}

// IsArray reports whether o is an array object.
func (o *Object) IsArray() bool { return o.Elems != nil || o.ElemT != nil }

// Len returns the array length (0 for class instances).
func (o *Object) Len() int { return len(o.Elems) }

func (o *Object) String() string {
	if o == nil {
		return "null"
	}
	if o.IsArray() {
		return fmt.Sprintf("%s[%d]#%d", o.ElemT, len(o.Elems), o.Seq)
	}
	return fmt.Sprintf("%s#%d", o.Class.Name, o.Seq)
}

// Frame is an activation record. Locals[0..Params) are the formal
// parameters; slot 0 holds the receiver for instance methods. Shadow is
// reserved for tracers (the per-frame shadow locals of the paper).
type Frame struct {
	Method *ir.Method
	Locals []Value
	PC     int

	// RetDst is the caller's destination slot for the return value (-1 for
	// none); CallIn is the call instruction that created this frame (nil
	// for the entry frame).
	RetDst int
	CallIn *ir.Instr

	// Shadow is owned by the active Tracer.
	Shadow any

	// tab is the pre-decoded dispatch table for Method (nil under legacy
	// switch dispatch) and ics the machine's inline caches for its virtual
	// call sites; both are set when the frame is pushed.
	tab []dinstr
	ics []icSite
}
