package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"lowutil"
	"lowutil/internal/jobs"
)

// This file is the server shell around the internal/jobs queue: the spec
// executor that resolves batch work through the same session LRU and
// memoized runs as the synchronous /v2/* endpoints, and the three job
// endpoints (submit, status, NDJSON event stream).

var errUnknownJob = errors.New("unknown job or batch")

// executeSpec runs one job spec to completion. Each kind produces exactly
// the JSON body its synchronous endpoint would have returned on a cold
// cache, so a batch of jobs and a sequence of direct calls are
// byte-identical. cache_hit is never set in job payloads: results are
// content-addressed, and whether a run was memoized is scheduling noise
// that would break deterministic replay.
func (s *Server) executeSpec(ctx context.Context, spec jobs.Spec) (*jobs.Result, error) {
	sess, _, err := s.sessionForSpec(spec)
	if err != nil {
		return nil, err
	}
	var payload any
	switch spec.Kind {
	case jobs.KindCompile:
		payload = compileResponse{Session: sess.ID, Instructions: sess.Prog.NumInstructions()}

	case jobs.KindRun:
		res, err := sess.Prog.RunContext(ctx)
		if err != nil {
			return nil, err
		}
		out := res.Output
		if out == nil {
			out = []int64{}
		}
		payload = runResponse{
			Session: sess.ID, Output: out,
			Steps: res.Steps, Allocs: res.Allocs, NativeWork: res.NativeWork,
		}

	case jobs.KindProfile:
		e, _, err := s.cachedProfile(ctx, sess, specProfileParams(spec))
		if err != nil {
			return nil, err
		}
		resp := profileResponse{Session: sess.ID, Top: []findingJSON{}}
		e.use(func(pr *lowutil.Profile) error {
			resp.Steps = pr.Steps()
			resp.Pruned = pr.PrunedEvents()
			for _, f := range pr.TopStructures(topOrDefault(spec.Top)) {
				resp.Top = append(resp.Top, findingJSON{
					Site: f.Site, Where: f.Where, Cost: f.Cost, Benefit: f.Benefit,
					Rate: f.Rate, ReachesConsumer: f.ReachesConsumer, Allocs: f.Allocs,
				})
			}
			return nil
		})
		payload = resp

	case jobs.KindReport:
		e, _, err := s.cachedProfile(ctx, sess, specProfileParams(spec))
		if err != nil {
			return nil, err
		}
		resp := reportResponse{Session: sess.ID}
		e.use(func(pr *lowutil.Profile) error {
			resp.Report = pr.Report(topOrDefault(spec.Top))
			return nil
		})
		payload = resp

	case jobs.KindSlice:
		opts := []lowutil.SliceOption{lowutil.WithTop(spec.Top)}
		if spec.Mode != "" {
			opts = append(opts, lowutil.WithMode(spec.Mode))
		}
		if spec.ObjCtx {
			opts = append(opts, lowutil.WithObjCtx())
		}
		rep, err := sess.Prog.StaticSliceContext(ctx, opts...)
		if err != nil {
			return nil, err
		}
		payload = reportResponse{Session: sess.ID, Report: rep}

	case jobs.KindAudit:
		e, hit, err := sess.audit(ctx, auditKey{Mode: spec.Mode, ObjCtx: spec.ObjCtx, Top: topOrDefault(spec.Top)})
		if hit {
			s.met.auditHits.Add(1)
		} else {
			s.met.auditMisses.Add(1)
		}
		if err != nil {
			return nil, err
		}
		payload = reportResponse{Session: sess.ID, Report: e.report}

	default:
		return nil, &badRequestError{fmt.Errorf("unknown job kind %q", spec.Kind)}
	}

	// Compact encoding: identical to the synchronous body modulo JSON
	// framing (the synchronous path streams via Encoder, which appends a
	// newline that re-marshaling a RawMessage would strip anyway).
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, err
	}
	return &jobs.Result{Kind: spec.Kind, Payload: raw}, nil
}

// sessionForSpec resolves (compiling on demand) the session for a spec's
// program through the server's session LRU — batch jobs and synchronous
// requests share one compiled-program cache.
func (s *Server) sessionForSpec(spec jobs.Spec) (*Session, bool, error) {
	mc, mm := spec.MainClass, spec.MainMethod
	if mc == "" {
		mc = "Main"
	}
	if mm == "" {
		mm = "main"
	}
	id := sessionKey(spec.Source, mc, mm)
	if sess, ok := s.sessions.get(id); ok {
		s.met.sessionHits.Add(1)
		return sess, true, nil
	}
	prog, err := lowutil.CompileAt(spec.Source, mc, mm)
	if err != nil {
		return nil, false, err
	}
	sess, inserted, evicted := s.sessions.add(&Session{ID: id, Created: time.Now(), Prog: prog})
	if inserted {
		s.met.sessionsCreated.Add(1)
	} else {
		s.met.sessionHits.Add(1)
	}
	s.met.sessionEvictions.Add(int64(evicted))
	return sess, !inserted, nil
}

// specProfileParams maps a job spec's profiling fields onto the memoized
// run key shared with the synchronous endpoints.
func specProfileParams(spec jobs.Spec) profileParams {
	return profileParams{
		Slots: spec.Slots, TreeHeight: spec.TreeHeight,
		Traditional: spec.Traditional, TrackControl: spec.TrackControl,
		Prune: spec.Prune, Legacy: spec.Legacy,
	}
}

func topOrDefault(top int) int {
	if top <= 0 {
		return lowutil.DefaultTop
	}
	return top
}

// ---- job endpoints ----

// jobSubmission is one job of a batch submission.
type jobSubmission struct {
	jobs.Spec
	// Priority orders jobs in the queue — higher runs earlier.
	Priority int `json:"priority,omitempty"`
	// DeadlineMS bounds the job's total lifetime from submission in
	// milliseconds, across retries (0 = none).
	DeadlineMS int `json:"deadline_ms,omitempty"`
}

type jobsRequest struct {
	// Key is the batch idempotency key: resubmitting the same key with the
	// same jobs returns the original IDs without enqueuing anything. Empty
	// derives the key from the batch content.
	Key  string          `json:"key,omitempty"`
	Jobs []jobSubmission `json:"jobs"`
}

type jobsResponse struct {
	Batch string           `json:"batch"`
	Jobs  []jobs.Submitted `json:"jobs"`
}

type batchStatusResponse struct {
	Batch string         `json:"batch"`
	Jobs  []*jobs.Status `json:"jobs"`
}

func (s *Server) handleJobsSubmit(ctx context.Context, r *http.Request) (any, error) {
	req, err := decode[jobsRequest](r)
	if err != nil {
		return nil, err
	}
	if len(req.Jobs) == 0 {
		return nil, &badRequestError{errors.New("empty batch")}
	}
	reqs := make([]jobs.Request, len(req.Jobs))
	for i, j := range req.Jobs {
		reqs[i] = jobs.Request{
			Spec:     j.Spec,
			Priority: j.Priority,
			Deadline: time.Duration(j.DeadlineMS) * time.Millisecond,
		}
	}
	key := req.Key
	if key == "" {
		key = contentKey(reqs)
	}
	batch, subs, err := s.jobs.Submit(key, reqs)
	if err != nil {
		switch {
		case errors.Is(err, jobs.ErrQueueFull), errors.Is(err, jobs.ErrBatchConflict):
			return nil, err
		default:
			return nil, &badRequestError{err}
		}
	}
	return jobsResponse{Batch: batch, Jobs: subs}, nil
}

// contentKey derives an idempotency key for keyless submissions from the
// batch content, so a blind retry of the same batch still deduplicates.
func contentKey(reqs []jobs.Request) string {
	h := sha256.New()
	for _, r := range reqs {
		fmt.Fprintf(h, "%s\x00%d\x00%d\x00", r.Spec.Hash(), r.Priority, r.Deadline)
	}
	return "content-" + hex.EncodeToString(h.Sum(nil))[:32]
}

// handleJobStatus serves GET /v2/jobs/{id} for both job IDs ("j…") and
// batch IDs ("b…").
func (s *Server) handleJobStatus(ctx context.Context, r *http.Request) (any, error) {
	id := r.PathValue("id")
	if st, ok := s.jobs.Status(id); ok {
		return st, nil
	}
	if sts, ok := s.jobs.BatchStatus(id); ok {
		return batchStatusResponse{Batch: id, Jobs: sts}, nil
	}
	return nil, fmt.Errorf("%w: %s", errUnknownJob, id)
}

// handleJobEvents streams GET /v2/jobs/{id}/events as NDJSON: the job's
// event log from ?after= (default 0) onward, following live until the job
// reaches a terminal state or the client disconnects. Events carry dense
// per-job sequence numbers and no timestamps, so a reconnecting client
// that resumes with after=<last seen seq> reconstructs the exact stream.
// Streaming is not subject to the per-request timeout.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.met.request("events")
	id := r.PathValue("id")
	after := 0
	if raw := r.URL.Query().Get("after"); raw != "" {
		var err error
		if after, err = strconv.Atoi(raw); err != nil || after < 0 {
			s.met.failure("events")
			status := s.writeErr(w, &badRequestError{fmt.Errorf("after must be a non-negative integer, got %q", raw)})
			s.logLine(r, "events", status, start)
			return
		}
	}
	if _, ok := s.jobs.Status(id); !ok {
		s.met.failure("events")
		status := s.writeErr(w, fmt.Errorf("%w: %s", errUnknownJob, id))
		s.logLine(r, "events", status, start)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	err := s.jobs.Events(r.Context(), id, after, func(ev jobs.Event) error {
		if err := enc.Encode(ev); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	status := http.StatusOK
	if err != nil {
		// Headers are long gone: the disconnect or encode failure just ends
		// the stream. The client resumes with ?after=.
		s.met.failure("events")
		status = 499
	}
	s.logLine(r, "events", status, start)
}
