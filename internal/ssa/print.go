package ssa

import (
	"fmt"
	"io"
	"strings"
)

// Textual SSA dump for `lowutil ssa`: blocks with phis, SSA operand/def
// names, SCCP verdicts (constants and unexecutable blocks), value-numbering
// redundancies and the loop forest with inferred trip counts.

// Dump writes a human-readable rendering of the analyzed method to w.
func (mi *MethodInfo) Dump(w io.Writer) {
	f, sc, ft := mi.F, mi.SCCP, mi.Forest
	m, cfg := f.M, f.CFG
	rep := CopyProp(f)
	vn := ValueNumbers(f, rep)

	fmt.Fprintf(w, "func %s: params=%d locals=%d blocks=%d vals=%d phis=%d consts=%d loops=%d\n",
		m.QualifiedName(), m.Params, m.NumLocals, cfg.NumBlocks(), f.NumVals(), f.NumPhis, sc.NumConsts(), len(ft.Loops))
	for i := range ft.Loops {
		lp := &ft.Loops[i]
		trip := "trip=?"
		if lp.Trip >= 0 {
			trip = fmt.Sprintf("trip=%d", lp.Trip)
		}
		fmt.Fprintf(w, "  loop %d: header=b%d depth=%d blocks=%d %s\n",
			i, lp.Header, lp.Depth, len(lp.Blocks), trip)
	}

	annot := func(v ValID) string {
		var parts []string
		if c, ok := sc.ConstOf(v); ok {
			if c.IsNull {
				parts = append(parts, "const null")
			} else {
				parts = append(parts, fmt.Sprintf("const %d", c.I))
			}
		}
		if v != None && vn[v] != v {
			parts = append(parts, "same as "+f.Name(vn[v]))
		} else if v != None && rep[v] != v {
			parts = append(parts, "copy of "+f.Name(rep[v]))
		}
		if len(parts) == 0 {
			return ""
		}
		return "  ; " + strings.Join(parts, ", ")
	}

	for b := 0; b < cfg.NumBlocks(); b++ {
		blk := &cfg.Blocks[b]
		if !cfg.Reachable(b) {
			fmt.Fprintf(w, "b%d: unreachable (pc %d..%d)\n", b, blk.Start, blk.End-1)
			continue
		}
		var tags []string
		if !sc.BlockExec[b] {
			tags = append(tags, "dead")
		}
		if d := ft.Depth(b); d > 0 {
			tags = append(tags, fmt.Sprintf("loop-depth=%d", d))
		}
		if w := mi.BlockWeight(b); w != 1 {
			tags = append(tags, fmt.Sprintf("weight=%g", w))
		}
		tag := ""
		if len(tags) > 0 {
			tag = "  [" + strings.Join(tags, " ") + "]"
		}
		fmt.Fprintf(w, "b%d: preds=%v succs=%v%s\n", b, blk.Preds, blk.Succs, tag)
		for _, pv := range f.Phis[b] {
			val := &f.Vals[pv]
			args := make([]string, len(val.Args))
			for j, a := range val.Args {
				args[j] = f.Name(a)
				if b == 0 && j == len(val.Args)-1 {
					args[j] += " (entry)"
				}
			}
			fmt.Fprintf(w, "  %8s  %s = phi(%s)%s\n", "", f.Name(pv), strings.Join(args, ", "), annot(pv))
		}
		for pc := blk.Start; pc < blk.End; pc++ {
			in := &m.Code[pc]
			var ops []string
			for _, v := range f.Operands[pc] {
				ops = append(ops, f.Name(v))
			}
			lhs := ""
			if d := f.DefOf[pc]; d != None {
				lhs = f.Name(d) + " = "
			}
			use := ""
			if len(ops) > 0 {
				use = " {" + strings.Join(ops, ", ") + "}"
			}
			fmt.Fprintf(w, "  pc %4d:  %s%s%s%s\n", pc, lhs, in.String(), use, annot(f.DefOf[pc]))
		}
	}
}
