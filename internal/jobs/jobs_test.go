package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lowutil"
)

// fakeResult wraps s as a Result payload.
func fakeResult(s string) *Result {
	raw, _ := json.Marshal(s)
	return &Result{Kind: "test", Payload: raw}
}

// countExec is an executor counting executions per spec source.
type countExec struct {
	calls atomic.Int64
	fail  func(spec Spec, call int64) error
}

func (e *countExec) Execute(ctx context.Context, spec Spec) (*Result, error) {
	n := e.calls.Add(1)
	if e.fail != nil {
		if err := e.fail(spec, n); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: %w", lowutil.ErrCanceled, err)
	}
	return fakeResult(spec.Source), nil
}

func testSpec(src string) Spec { return Spec{Kind: KindRun, Source: src} }

// waitTerminal polls until job id is terminal or the deadline passes.
func waitTerminal(t *testing.T, q *Queue, id string) *Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := q.Status(id)
		if !ok {
			t.Fatalf("job %s unknown", id)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never became terminal", id)
	return nil
}

// TestSubmitRunsAndStores: a batch completes, results land in the store,
// and an identical spec in a later batch is served from the store.
func TestSubmitRunsAndStores(t *testing.T) {
	exec := &countExec{}
	q := New(Config{Executor: exec, Shards: 2})
	defer q.Drain()

	_, subs, err := q.Submit("batch-1", []Request{
		{Spec: testSpec("a")}, {Spec: testSpec("b")},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range subs {
		st := waitTerminal(t, q, s.ID)
		if st.State != StateDone || st.Result == nil {
			t.Fatalf("job %s: state=%s err=%+v", s.ID, st.State, st.Err)
		}
	}
	if n := exec.calls.Load(); n != 2 {
		t.Fatalf("executor ran %d times, want 2", n)
	}

	// Same spec, new batch: store hit, no third execution.
	_, subs2, err := q.Submit("batch-2", []Request{{Spec: testSpec("a")}})
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, q, subs2[0].ID)
	if st.State != StateDone {
		t.Fatalf("state %s", st.State)
	}
	if n := exec.calls.Load(); n != 2 {
		t.Errorf("executor ran %d times after store hit, want 2", n)
	}
	if stats := q.Stats(); stats.ResultHits != 1 {
		t.Errorf("result hits = %d, want 1", stats.ResultHits)
	}
}

// TestIdempotentSubmit: resubmitting the same key returns the same IDs
// without enqueuing; a different payload under the same key conflicts.
func TestIdempotentSubmit(t *testing.T) {
	q := New(Config{Executor: &countExec{}})
	defer q.Drain()

	reqs := []Request{{Spec: testSpec("x")}, {Spec: testSpec("y")}}
	b1, subs1, err := q.Submit("key", reqs)
	if err != nil {
		t.Fatal(err)
	}
	b2, subs2, err := q.Submit("key", reqs)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Errorf("batch IDs differ: %s vs %s", b1, b2)
	}
	for i := range subs1 {
		if subs1[i].ID != subs2[i].ID {
			t.Errorf("job %d: IDs differ: %s vs %s", i, subs1[i].ID, subs2[i].ID)
		}
		if !subs2[i].Duplicate {
			t.Errorf("job %d: resubmission not marked duplicate", i)
		}
	}
	if st := q.Stats(); st.Submitted != 2 || st.Deduped != 2 {
		t.Errorf("submitted=%d deduped=%d, want 2/2", st.Submitted, st.Deduped)
	}
	if _, _, err := q.Submit("key", []Request{{Spec: testSpec("z")}}); !errors.Is(err, ErrBatchConflict) {
		t.Errorf("conflicting reuse: got %v, want ErrBatchConflict", err)
	}
}

// TestRetryBackoff: transient failures are retried with backoff until
// success; the event log shows the retry trail in order.
func TestRetryBackoff(t *testing.T) {
	exec := &countExec{}
	exec.fail = func(spec Spec, call int64) error {
		if call <= 2 {
			return Transient(errors.New("flaky"))
		}
		return nil
	}
	q := New(Config{Executor: exec, Shards: 1, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond})
	defer q.Drain()

	_, subs, err := q.Submit("k", []Request{{Spec: testSpec("r")}})
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, q, subs[0].ID)
	if st.State != StateDone {
		t.Fatalf("state=%s err=%+v", st.State, st.Err)
	}
	if st.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", st.Attempts)
	}
	var types []string
	if err := q.Events(context.Background(), subs[0].ID, 0, func(ev Event) error {
		types = append(types, ev.Type)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{EventQueued, EventStarted, EventRetrying, EventStarted, EventRetrying, EventStarted, EventDone}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Errorf("event trail = %v, want %v", types, want)
	}
	if stats := q.Stats(); stats.Retries != 2 {
		t.Errorf("retries = %d, want 2", stats.Retries)
	}
}

// TestRetryExhaustion: a persistently transient failure fails after
// MaxAttempts with a retryable error code.
func TestRetryExhaustion(t *testing.T) {
	exec := &countExec{fail: func(Spec, int64) error { return Transient(errors.New("always down")) }}
	q := New(Config{Executor: exec, MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	defer q.Drain()

	_, subs, _ := q.Submit("k", []Request{{Spec: testSpec("f")}})
	st := waitTerminal(t, q, subs[0].ID)
	if st.State != StateFailed || st.Err == nil {
		t.Fatalf("state=%s err=%+v, want failed", st.State, st.Err)
	}
	if st.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", st.Attempts)
	}
	if !st.Err.Retryable {
		t.Errorf("exhausted transient failure should stay marked retryable: %+v", st.Err)
	}
	if n := exec.calls.Load(); n != 3 {
		t.Errorf("executor ran %d times, want 3", n)
	}
}

// TestPermanentFailureNoRetry: a non-transient error fails immediately.
func TestPermanentFailureNoRetry(t *testing.T) {
	exec := &countExec{fail: func(Spec, int64) error { return errors.New("broken spec") }}
	q := New(Config{Executor: exec})
	defer q.Drain()

	_, subs, _ := q.Submit("k", []Request{{Spec: testSpec("p")}})
	st := waitTerminal(t, q, subs[0].ID)
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if st.Attempts != 1 || exec.calls.Load() != 1 {
		t.Errorf("attempts=%d calls=%d, want 1/1", st.Attempts, exec.calls.Load())
	}
	if st.Err.Code != "internal" || st.Err.Retryable {
		t.Errorf("err = %+v, want non-retryable internal", st.Err)
	}
}

// TestJobDeadline: a job whose per-job deadline expires fails with code
// "deadline" and is not retried past it.
func TestJobDeadline(t *testing.T) {
	block := make(chan struct{})
	exec := ExecutorFunc(func(ctx context.Context, spec Spec) (*Result, error) {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("%w: %w", lowutil.ErrCanceled, ctx.Err())
		case <-block:
			return fakeResult(spec.Source), nil
		}
	})
	q := New(Config{Executor: exec, BaseBackoff: time.Millisecond})
	defer q.Drain()
	defer close(block)

	_, subs, _ := q.Submit("k", []Request{{Spec: testSpec("slow"), Deadline: 30 * time.Millisecond}})
	st := waitTerminal(t, q, subs[0].ID)
	if st.State != StateFailed || st.Err == nil || st.Err.Code != "deadline" {
		t.Fatalf("state=%s err=%+v, want deadline failure", st.State, st.Err)
	}
	if st.Err.Retryable {
		t.Error("deadline failures must not be retryable")
	}
}

// TestPriorityOrdering: with one shard and one worker, higher-priority
// jobs start before lower-priority ones submitted earlier.
func TestPriorityOrdering(t *testing.T) {
	var order []string
	started := make(chan string, 8)
	gate := make(chan struct{})
	exec := ExecutorFunc(func(ctx context.Context, spec Spec) (*Result, error) {
		if spec.Source == "gate" {
			<-gate // hold the only worker so the rest queue up
		} else {
			started <- spec.Source
		}
		return fakeResult(spec.Source), nil
	})
	q := New(Config{Executor: exec, Shards: 1, Workers: 1})
	defer q.Drain()

	if _, _, err := q.Submit("gate", []Request{{Spec: testSpec("gate")}}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let the gate job occupy the worker
	_, subs, err := q.Submit("work", []Request{
		{Spec: testSpec("low"), Priority: 1},
		{Spec: testSpec("mid"), Priority: 5},
		{Spec: testSpec("high"), Priority: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	close(gate)
	for _, s := range subs {
		waitTerminal(t, q, s.ID)
	}
	close(started)
	for src := range started {
		order = append(order, src)
	}
	if strings.Join(order, ",") != "high,mid,low" {
		t.Errorf("start order = %v, want high,mid,low", order)
	}
}

// TestDrainRequeuesInFlight: draining cancels a running job, re-queues it
// without consuming an attempt, and Resume completes it.
func TestDrainRequeuesInFlight(t *testing.T) {
	release := make(chan struct{})
	var interrupted atomic.Bool
	exec := ExecutorFunc(func(ctx context.Context, spec Spec) (*Result, error) {
		select {
		case <-ctx.Done():
			interrupted.Store(true)
			return nil, fmt.Errorf("%w: %w", lowutil.ErrCanceled, ctx.Err())
		case <-release:
			return fakeResult(spec.Source), nil
		}
	})
	q := New(Config{Executor: exec, Shards: 1, Workers: 1})

	_, subs, err := q.Submit("k", []Request{{Spec: testSpec("d")}})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the job to be running, then drain under it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, _ := q.Status(subs[0].ID)
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	q.Drain()
	if !interrupted.Load() {
		t.Fatal("drain did not cancel the in-flight execution")
	}
	st, _ := q.Status(subs[0].ID)
	if st.State != StateQueued {
		t.Fatalf("after drain: state = %s, want queued", st.State)
	}
	if st.Attempts != 0 {
		t.Errorf("after drain: attempts = %d, want 0 (refunded)", st.Attempts)
	}
	if stats := q.Stats(); stats.Requeued != 1 {
		t.Errorf("requeued = %d, want 1", stats.Requeued)
	}

	close(release)
	q.Resume()
	defer q.Drain()
	fin := waitTerminal(t, q, subs[0].ID)
	if fin.State != StateDone {
		t.Fatalf("after resume: state=%s err=%+v", fin.State, fin.Err)
	}
}

// TestEventsReplayDeterministic: two full replays of a finished job's
// stream are identical, and replay-from-seq resumes mid-stream.
func TestEventsReplayDeterministic(t *testing.T) {
	exec := &countExec{}
	exec.fail = func(spec Spec, call int64) error {
		if call == 1 {
			return Transient(errors.New("blip"))
		}
		return nil
	}
	q := New(Config{Executor: exec, BaseBackoff: time.Millisecond})
	defer q.Drain()
	_, subs, _ := q.Submit("k", []Request{{Spec: testSpec("e")}})
	waitTerminal(t, q, subs[0].ID)

	replay := func(after int) []string {
		var out []string
		if err := q.Events(context.Background(), subs[0].ID, after, func(ev Event) error {
			b, _ := json.Marshal(ev)
			out = append(out, string(b))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := replay(0), replay(0)
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Errorf("replays differ:\n%v\nvs\n%v", a, b)
	}
	if len(a) < 4 {
		t.Fatalf("expected a retry trail, got %v", a)
	}
	// Resuming after seq 2 yields exactly the tail.
	tail := replay(2)
	if strings.Join(tail, "\n") != strings.Join(a[2:], "\n") {
		t.Errorf("resumed replay differs:\n%v\nvs\n%v", tail, a[2:])
	}
	// Sequence numbers are dense from 1.
	for i, line := range a {
		var ev Event
		json.Unmarshal([]byte(line), &ev)
		if ev.Seq != i+1 {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
	}
}

// TestQueueFull: submissions over Depth are rejected with ErrQueueFull.
func TestQueueFull(t *testing.T) {
	block := make(chan struct{})
	exec := ExecutorFunc(func(ctx context.Context, spec Spec) (*Result, error) {
		<-block
		return fakeResult(spec.Source), nil
	})
	q := New(Config{Executor: exec, Shards: 1, Workers: 1, Depth: 2})
	defer q.Drain()
	defer close(block)

	if _, _, err := q.Submit("a", []Request{{Spec: testSpec("1")}, {Spec: testSpec("2")}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Submit("b", []Request{{Spec: testSpec("3")}}); !errors.Is(err, ErrQueueFull) {
		t.Errorf("over-depth submit: got %v, want ErrQueueFull", err)
	}
}

// TestEvictedResultRecomputes: evicting a stored result forces the next
// identical spec to execute again.
func TestEvictedResultRecomputes(t *testing.T) {
	exec := &countExec{}
	q := New(Config{Executor: exec})
	defer q.Drain()

	spec := testSpec("v")
	_, subs, _ := q.Submit("k1", []Request{{Spec: spec}})
	waitTerminal(t, q, subs[0].ID)
	if !q.EvictResult(spec) {
		t.Fatal("expected a resident result to evict")
	}
	_, subs2, _ := q.Submit("k2", []Request{{Spec: spec}})
	st := waitTerminal(t, q, subs2[0].ID)
	if st.State != StateDone {
		t.Fatalf("state=%s", st.State)
	}
	if n := exec.calls.Load(); n != 2 {
		t.Errorf("executor ran %d times, want 2 (eviction forces recompute)", n)
	}
}

// TestBatchStatus: batch lookup returns every job in submission order.
func TestBatchStatus(t *testing.T) {
	q := New(Config{Executor: &countExec{}})
	defer q.Drain()
	batch, subs, _ := q.Submit("k", []Request{{Spec: testSpec("1")}, {Spec: testSpec("2")}, {Spec: testSpec("3")}})
	for _, s := range subs {
		waitTerminal(t, q, s.ID)
	}
	sts, ok := q.BatchStatus(batch)
	if !ok || len(sts) != 3 {
		t.Fatalf("batch status: ok=%v n=%d", ok, len(sts))
	}
	for i, st := range sts {
		if st.Index != i || st.State != StateDone {
			t.Errorf("job %d: index=%d state=%s", i, st.Index, st.State)
		}
	}
	if _, ok := q.BatchStatus("bmissing"); ok {
		t.Error("unknown batch reported ok")
	}
}

// TestEventsNegativeAfter: a negative resume point replays from the start
// instead of panicking with a slice bounds error (it reaches Events
// unvalidated from GET /v2/jobs/{id}/events?after=-1).
func TestEventsNegativeAfter(t *testing.T) {
	q := New(Config{Executor: &countExec{}})
	defer q.Drain()
	_, subs, _ := q.Submit("k", []Request{{Spec: testSpec("n")}})
	waitTerminal(t, q, subs[0].ID)

	var full, neg int
	if err := q.Events(context.Background(), subs[0].ID, 0, func(Event) error { full++; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := q.Events(context.Background(), subs[0].ID, -7, func(Event) error { neg++; return nil }); err != nil {
		t.Fatal(err)
	}
	if full == 0 || neg != full {
		t.Errorf("negative after replayed %d events, want %d (full trail)", neg, full)
	}
}

// TestBatchRecordGC: batch records whose jobs have all been evicted by the
// MaxJobs bound are dropped too — one record per idempotency key must not
// accumulate forever.
func TestBatchRecordGC(t *testing.T) {
	q := New(Config{Executor: &countExec{}, MaxJobs: 4})
	defer q.Drain()

	const batches = 24
	for i := 0; i < batches; i++ {
		_, subs, err := q.Submit(fmt.Sprintf("key-%d", i), []Request{{Spec: testSpec(fmt.Sprintf("src-%d", i))}})
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, q, subs[0].ID)
	}
	// One more submission triggers GC over the fully-terminal backlog.
	_, subs, err := q.Submit("key-final", []Request{{Spec: testSpec("final")}})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, q, subs[0].ID)

	q.mu.Lock()
	nBatches, nJobs := len(q.batches), len(q.jobs)
	q.mu.Unlock()
	if nJobs > 4+1 {
		t.Errorf("job records = %d, want ≤ MaxJobs+1", nJobs)
	}
	// Every retained batch must reference at least one live job record.
	if nBatches > nJobs {
		t.Errorf("batch records = %d outlive the %d job records; q.batches is leaking", nBatches, nJobs)
	}
}

// TestConcurrentResume: racing Resume calls after a drain must start
// exactly one dispatcher set — a double start leaks the first run context
// and its workers, deadlocking the next Drain.
func TestConcurrentResume(t *testing.T) {
	q := New(Config{Executor: &countExec{}, Shards: 2})
	q.Drain()

	var wg sync.WaitGroup
	gate := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			q.Resume()
		}()
	}
	close(gate)
	wg.Wait()

	_, subs, err := q.Submit("after-resume", []Request{{Spec: testSpec("r")}})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, q, subs[0].ID); st.State != StateDone {
		t.Fatalf("state=%s err=%+v", st.State, st.Err)
	}
	done := make(chan struct{})
	go func() { q.Drain(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain hung: leaked dispatchers from a double Resume")
	}
}
