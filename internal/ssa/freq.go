package ssa

import "lowutil/internal/ir"

// The symbolic cost model: per-instruction static execution-frequency
// weights. PR 3's static Gcost bounds count every instruction once; the
// paper's dynamic RAC/RAB are dominated by loop-resident instructions, so
// ranking by frequency-blind bounds misorders structures badly. The weight
// of an instruction here is
//
//	0                                  when it can never execute
//	                                   (CFG-unreachable or SCCP-proven dead),
//	Π trip(L) over enclosing loops L   otherwise,
//
// with trip(L) the exact SCCP-derived trip count where the loop is counted
// with constant bounds, and DefaultTrip for unknown loops — the "loop
// depth^k" heuristic of the issue, exact where trip counts are constant.
// Only the 0 case claims soundness (those instructions provably never run);
// positive weights are ranking heuristics.

// DefaultTrip is the assumed trip count of a loop whose bounds SCCP cannot
// resolve.
const DefaultTrip = 10

// MaxWeight caps the frequency product so pathological nests cannot
// overflow or drown the ranking.
const MaxWeight = 1e12

// MethodInfo bundles the per-method SSA products the weight computation
// (and its dump/debug clients) derive.
type MethodInfo struct {
	F      *Func
	SCCP   *SCCP
	Forest *Forest
}

// AnalyzeMethod builds SSA, SCCP and the loop forest for one method.
func AnalyzeMethod(m *ir.Method) *MethodInfo { return AnalyzeMethodSeeded(m, nil) }

// AnalyzeMethodSeeded is AnalyzeMethod with interprocedural parameter facts
// seeding the SCCP pass — constant parameters then fold into branch verdicts
// and loop trip counts.
func AnalyzeMethodSeeded(m *ir.Method, params []ParamFact) *MethodInfo {
	f := Build(m, nil)
	sc := RunSCCPSeeded(f, params)
	return &MethodInfo{F: f, SCCP: sc, Forest: BuildForest(f, sc)}
}

// BlockWeight returns the static frequency weight of block b.
func (mi *MethodInfo) BlockWeight(b int) float64 {
	if !mi.F.CFG.Reachable(b) || !mi.SCCP.BlockExec[b] {
		return 0
	}
	w := 1.0
	for li := mi.Forest.LoopOf[b]; li >= 0; li = mi.Forest.Loops[li].Parent {
		switch trip := mi.Forest.Loops[li].Trip; {
		case trip < 0:
			w *= DefaultTrip // unknown bounds
		case trip > 1:
			w *= float64(trip)
			// trip 0 or 1: the header still runs; weigh the pass once.
		}
		if w > MaxWeight {
			return MaxWeight
		}
	}
	return w
}

// Weights computes the per-instruction static frequency weight of every
// instruction in prog, indexed by ir.Instr.ID. Instructions that provably
// never execute (their block is CFG-unreachable or SCCP proves no branch
// path reaches it) weigh 0; every other instruction weighs the product of
// its enclosing loops' trip counts.
func Weights(prog *ir.Program) []float64 {
	w := make([]float64, len(prog.Instrs))
	for _, c := range prog.Classes {
		for _, m := range c.Methods {
			mi := AnalyzeMethod(m)
			for pc := range m.Code {
				w[m.Code[pc].ID] = mi.BlockWeight(mi.F.CFG.BlockOf[pc])
			}
		}
	}
	return w
}
